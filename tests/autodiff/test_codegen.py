"""Codegen-tier conformance: parity with eager and replay, plus fallback.

Every program the fused-source backend executes must produce the same
value and gradients as the eager tape, bit for bit — the conformance
table in ``tests/conftest.py`` supplies one program per primitive/shape
regime (including the vbatch-composed path), and dedicated cases cover
the stacked-matmul VJPs, the cotangent-aliasing rewrites, and the
solve-family programs whose opaque closures run inside generated source.
When lowering or validation fails, the tier must fall back to replay —
warning once, never changing results.
"""

from __future__ import annotations

import warnings
import zlib

import numpy as np
import pytest

from repro.autodiff import linalg, ops
from repro.autodiff.batching import vbatch
from repro.autodiff.compile import ReplayProfile, compiled_value_and_grad
from repro.autodiff.functional import value_and_grad
from repro.autodiff.tensor import asdata


def _rng(case, salt: str = ""):
    return np.random.default_rng(zlib.crc32((case.label + salt).encode()))


def _grads_tuple(g):
    return g if isinstance(g, (tuple, list)) else (g,)


def _assert_tier_matches_eager(loss, args, diff_idx, label):
    """Trace + two codegen replays must equal eager bitwise, no fallback."""
    ev, eg = value_and_grad(loss, argnums=diff_idx)(*args)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # a codegen fallback warns: fail loud
        cvg = compiled_value_and_grad(loss, argnums=diff_idx, mode="codegen")
        results = [cvg(*args), cvg(*args), cvg(*args)]
    assert cvg.cache_info()["codegen_fallbacks"] == 0, label
    assert cvg.cache_info()["codegen_programs"] == 1, label
    for v, g in results:
        assert float(v) == float(ev), label
        for a, b in zip(_grads_tuple(g), _grads_tuple(eg)):
            a, b = asdata(a), asdata(b)
            assert np.array_equal(a, b), (
                f"{label}: codegen grad deviates, "
                f"max |diff| = {np.max(np.abs(a - b))}"
            )


# ----------------------------------------------------------------------
# Conformance table: every primitive, including vbatch composition
# ----------------------------------------------------------------------
def test_codegen_matches_eager_on_conformance_case(batch_case):
    case = batch_case
    if not case.compileable:
        pytest.skip("argument not hashable/wrappable by the compile cache")
    args = case.make_args(_rng(case), 3)
    diff_idx = tuple(i for i, d in enumerate(case.diff) if d)

    def loss(*call_args):
        return ops.sum_(vbatch(case.fn, in_axes=case.in_axes)(*call_args))

    _assert_tier_matches_eager(loss, args, diff_idx, case.label)


# ----------------------------------------------------------------------
# Stacked matmul: the general-rank symbolic VJPs
# ----------------------------------------------------------------------
STACKED_MATMUL_SHAPES = [
    ((3, 4), (4, 2)),          # plain 2x2
    ((2, 3, 4), (4, 2)),       # stacked @ matrix
    ((3, 4), (2, 4, 2)),       # matrix @ stacked
    ((2, 3, 4), (2, 4, 2)),    # equal batch
    ((1, 3, 4), (5, 4, 2)),    # broadcast batch
    ((5, 2, 3, 4), (4, 2)),    # rank-4 @ matrix
]


@pytest.mark.parametrize(
    "sa,sb", STACKED_MATMUL_SHAPES,
    ids=[f"{sa}@{sb}" for sa, sb in STACKED_MATMUL_SHAPES],
)
def test_codegen_stacked_matmul_parity(sa, sb):
    rng = np.random.default_rng(zlib.crc32(f"{sa}{sb}".encode()))
    A, B = rng.standard_normal(sa), rng.standard_normal(sb)

    def loss(a, b):
        return ops.sum_(ops.square(ops.matmul(a, b)))

    _assert_tier_matches_eager(loss, (A, B), (0, 1), f"matmul {sa}@{sb}")


# ----------------------------------------------------------------------
# Solve-family programs lower WITHOUT falling back (opaque closures run
# inside the generated source via recorded F/V callbacks)
# ----------------------------------------------------------------------
def test_codegen_solve_program_does_not_fall_back():
    rng = np.random.default_rng(7)
    A = rng.standard_normal((6, 6)) + 6.0 * np.eye(6)

    def loss(b):
        x = linalg.solve(A, ops.exp(b))
        return ops.sum_(ops.square(x)) + ops.sum_(b * x)

    _assert_tier_matches_eager(loss, (np.linspace(0.1, 1.0, 6),), 0, "solve")


def test_codegen_lu_solver_program():
    rng = np.random.default_rng(8)
    solver = linalg.LUSolver(rng.standard_normal((5, 5)) + 5.0 * np.eye(5))

    def loss(b):
        return ops.sum_(ops.square(solver(ops.sin(b))))

    _assert_tier_matches_eager(loss, (np.linspace(0.1, 1.0, 5),), 0, "lu")


# ----------------------------------------------------------------------
# Cotangent-aliasing rewrites: regression programs
# ----------------------------------------------------------------------
class TestCotangentAliasing:
    def test_view_chain_alias(self):
        # reshape/transpose cotangents are forwarded as zero-copy views.
        def loss(x):
            y = ops.transpose(ops.reshape(ops.exp(x), (3, 4)))
            return ops.sum_(ops.square(y))

        _assert_tier_matches_eager(
            loss, (np.linspace(0.1, 1.0, 12),), 0, "view-alias"
        )

    def test_identity_add_alias(self):
        # add forwards its cotangent untouched when shapes match …
        def loss(x, y):
            return ops.sum_(ops.square(x + y))

        a = np.linspace(0.1, 1.0, 9)
        b = np.linspace(1.0, 2.0, 9)
        _assert_tier_matches_eager(loss, (a, b), (0, 1), "add-alias")

    def test_broadcast_add_not_aliased(self):
        # … but an unbroadcast reduction blocks the rewrite.
        def loss(x, y):
            return ops.sum_(ops.square(x + y))  # (3,) + (4,3)

        a = np.linspace(0.1, 1.0, 3)
        b = np.linspace(1.0, 2.0, 12).reshape(4, 3)
        _assert_tier_matches_eager(loss, (a, b), (0, 1), "bcast-add")

    def test_fan_out_not_aliased(self):
        # Two pushes into one destination: accumulation must survive.
        def loss(x):
            t = ops.exp(x)
            return ops.sum_(ops.sin(t)) + ops.sum_(ops.square(t))

        _assert_tier_matches_eager(
            loss, (np.linspace(0.1, 1.0, 10),), 0, "fan-out"
        )

    def test_sub_slot1_not_aliased(self):
        # sub's second operand needs negation — no identity forwarding.
        def loss(x, y):
            return ops.sum_(ops.square(x - ops.exp(y)))

        a = np.linspace(0.1, 1.0, 8)
        b = np.linspace(0.0, 0.5, 8)
        _assert_tier_matches_eager(loss, (a, b), (0, 1), "sub-slot1")


# ----------------------------------------------------------------------
# Fallback: lowering/validation failure degrades to replay, with warning
# ----------------------------------------------------------------------
def test_codegen_falls_back_to_replay_on_lowering_failure(monkeypatch):
    import repro.autodiff.compile as compile_mod

    def boom(prog):
        raise compile_mod.CompileError("synthetic lowering failure")

    def loss(x):
        return ops.sum_(ops.square(x))

    x = np.linspace(0.1, 1.0, 6)
    ev, eg = value_and_grad(loss)(x)

    import repro.autodiff.codegen as codegen_mod
    monkeypatch.setattr(codegen_mod, "codegen_program", boom)
    with pytest.warns(RuntimeWarning, match="falling back"):
        vg = compiled_value_and_grad(loss, mode="codegen")
        vg(x)  # trace + failed build
    v, g = vg(x)  # replay-tier execution
    info = vg.cache_info()
    assert info["codegen_fallbacks"] == 1
    assert info["codegen_programs"] == 0
    assert v == ev
    np.testing.assert_array_equal(g, eg)


# ----------------------------------------------------------------------
# Profiling: per-fused-kernel stats populate under the codegen tier
# ----------------------------------------------------------------------
def test_codegen_profile_reports_kernels():
    def loss(x):
        return ops.sum_(ops.sin(ops.exp(x)) * x)

    x = np.linspace(0.1, 1.0, 32)
    vg = compiled_value_and_grad(loss, mode="codegen", profile=True)
    for _ in range(4):
        vg(x)
    p = vg.profile
    assert isinstance(p, ReplayProfile)
    assert p.n_codegen_replays == 3  # first call traces
    assert p.kernels, "profiled codegen must record per-kernel stats"
    assert any("+" in name for name in p.kernels), (
        f"expected a fused kernel among {sorted(p.kernels)}"
    )
    assert p.fused_ops > 0 and p.fusion_groups > 0
    assert p.arena_slots >= 0
    report = p.report()
    assert "generated kernels" in report
    assert "fusion groups" in report

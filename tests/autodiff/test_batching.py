"""Batching-rule conformance suite (DESIGN §13).

For every registered primitive (via the ``BATCHING_CASES`` table in
``tests/conftest.py``) this suite pins the four-part contract:

(a) ``vbatch(f)(xs)`` equals ``stack([f(x) for x in xs])`` — bitwise by
    default, with per-case absolute tolerances only where a BLAS/LAPACK
    multi-RHS call is documented not to be bit-reproducible (dense
    ``getrs``/``gelsd`` blocks);
(b) cotangents of the batched program match the looped per-item VJPs
    slice for slice (same default-bitwise policy; const-operand
    cotangents allow for the differing accumulation order);
(c) the compiled replay engine agrees with the eager tape on batched
    programs — trace call and replay call both;
(d) registry completeness — every public op in ``ops``/``linalg``/
    ``sparse`` is a registered primitive or a marked composite, every
    registered primitive has a rule or a declared fallback, and the
    conformance table itself covers the whole registry, so a new
    primitive cannot land untested.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.autodiff import batching, linalg, ops, sparse
from repro.autodiff.batching import (
    BatchTracer,
    declared_fallbacks,
    has_batch_rule,
    registered_primitives,
    vbatch,
)
from repro.autodiff.compile import compiled_value_and_grad
from repro.autodiff.functional import value_and_grad
from repro.autodiff.tensor import Tensor, asdata, tensor


def _rng(case, salt: str = ""):
    return np.random.default_rng(zlib.crc32((case.label + salt).encode()))


def _item_args(args, in_axes, i):
    return [a[i] if ax == 0 else a for a, ax in zip(args, in_axes)]


def _assert_close(a, b, tol, msg):
    a, b = np.asarray(a), np.asarray(b)
    assert a.shape == b.shape, f"{msg}: shape {a.shape} != {b.shape}"
    if tol == 0.0:
        assert np.array_equal(a, b), (
            f"{msg}: not bitwise, max |diff| = {np.max(np.abs(a - b))}"
        )
    else:
        np.testing.assert_allclose(a, b, rtol=0.0, atol=tol, err_msg=msg)


# ----------------------------------------------------------------------
# (a) forward: vbatch == stacked loop
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", [1, 3])
def test_forward_matches_stacked_loop(batch_case, n):
    args = batch_case.make_args(_rng(batch_case), n)
    out = vbatch(batch_case.fn, in_axes=batch_case.in_axes)(*args)
    ref = np.stack(
        [
            asdata(batch_case.fn(*_item_args(args, batch_case.in_axes, i)))
            for i in range(n)
        ]
    )
    _assert_close(out.data, ref, batch_case.fwd_tol, batch_case.label)


def test_zero_batch_yields_empty_output(batch_case):
    # N = 0 must produce a (0, *item_shape) result without error — the
    # degenerate edge every rule (and the fallback probe) must survive.
    out0 = vbatch(batch_case.fn, in_axes=batch_case.in_axes)(
        *batch_case.make_args(_rng(batch_case), 0)
    )
    out1 = vbatch(batch_case.fn, in_axes=batch_case.in_axes)(
        *batch_case.make_args(_rng(batch_case), 1)
    )
    assert out0.shape == (0,) + out1.shape[1:]


# ----------------------------------------------------------------------
# (b) reverse: batched VJPs == looped VJPs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", [1, 3])
def test_vjp_matches_looped(batch_case, n):
    case = batch_case
    args = case.make_args(_rng(case), n)

    # Batched pass: one stacked program, one backward.
    targs, leaves = [], {}
    for idx, (a, d) in enumerate(zip(args, case.diff)):
        if d:
            t = tensor(np.asarray(a, dtype=np.float64), requires_grad=True)
            targs.append(t)
            leaves[idx] = t
        else:
            targs.append(a)
    out = vbatch(case.fn, in_axes=case.in_axes)(*targs)
    cot = _rng(case, "cot").standard_normal(out.shape)
    out.backward(cot)

    # Looped reference: fresh leaves per item for batched operands, ONE
    # shared leaf for const operands (its grad accumulates across items
    # exactly as N uses of the same tensor would).
    const_t = {
        idx: tensor(np.asarray(args[idx], dtype=np.float64), requires_grad=True)
        for idx, (ax, d) in enumerate(zip(case.in_axes, case.diff))
        if d and ax is None
    }
    item_grads = {
        idx: []
        for idx, (ax, d) in enumerate(zip(case.in_axes, case.diff))
        if d and ax == 0
    }
    for i in range(n):
        call, item_t = [], {}
        for idx, (a, ax, d) in enumerate(zip(args, case.in_axes, case.diff)):
            if ax == 0:
                if d:
                    t = tensor(np.asarray(a[i], dtype=np.float64), requires_grad=True)
                    item_t[idx] = t
                    call.append(t)
                else:
                    call.append(a[i])
            else:
                call.append(const_t.get(idx, a))
        o = case.fn(*call)
        o.backward(cot[i])
        for idx, t in item_t.items():
            item_grads[idx].append(t.grad)

    for idx, grads in item_grads.items():
        batched_grad = leaves[idx].grad
        assert batched_grad is not None, f"{case.label}: no grad for arg {idx}"
        for i in range(n):
            _assert_close(
                batched_grad[i], grads[i], case.grad_tol,
                f"{case.label}: arg {idx} item {i} cotangent",
            )
    for idx, ct in const_t.items():
        _assert_close(
            leaves[idx].grad, ct.grad, case.const_grad_tol,
            f"{case.label}: const arg {idx} cotangent",
        )


# ----------------------------------------------------------------------
# (c) compiled replay == eager on batched programs
# ----------------------------------------------------------------------
def test_compiled_matches_eager(batch_case):
    case = batch_case
    if not case.compileable:
        pytest.skip("argument not hashable/wrappable by the compile cache")
    args = case.make_args(_rng(case), 3)
    diff_idx = tuple(i for i, d in enumerate(case.diff) if d)

    def loss(*call_args):
        return ops.sum_(vbatch(case.fn, in_axes=case.in_axes)(*call_args))

    ev, eg = value_and_grad(loss, argnums=diff_idx)(*args)
    cvg = compiled_value_and_grad(loss, argnums=diff_idx)
    v1, g1 = cvg(*args)  # trace call
    v2, g2 = cvg(*args)  # replay call
    def grads_tuple(g):
        return g if isinstance(g, (tuple, list)) else (g,)

    for v, g in ((v1, g1), (v2, g2)):
        assert float(v) == float(ev), case.label
        for a, b in zip(grads_tuple(g), grads_tuple(eg)):
            _assert_close(
                asdata(a), asdata(b), 0.0, f"{case.label}: compiled grad"
            )


# ----------------------------------------------------------------------
# (d) registry completeness
# ----------------------------------------------------------------------
#: Public callables in the op modules that are deliberately NOT
#: primitives: tape plumbing, factories, and re-exported helpers.
_NON_PRIMITIVES = {
    "make_node", "tensor", "asdata", "is_tensor", "unbroadcast",
    "primitive", "composite", "make_linear_solver", "get_registry",
    "span",
}


def _public_callables(mod):
    for name, obj in vars(mod).items():
        if name.startswith("_") or isinstance(obj, type) or not callable(obj):
            continue
        if getattr(obj, "__module__", None) != mod.__name__:
            continue  # re-exports (np functions, decorators from batching)
        yield name, obj


def test_every_public_op_is_primitive_or_composite():
    offenders = []
    for mod in (ops, linalg, sparse):
        for name, obj in _public_callables(mod):
            if name in _NON_PRIMITIVES:
                continue
            if getattr(obj, "_primitive_name", None):
                continue
            if getattr(obj, "_composite", False):
                continue
            offenders.append(f"{mod.__name__}.{name}")
    assert offenders == [], (
        "public ops without @primitive/@composite (add a batching rule or "
        f"a declared fallback): {offenders}"
    )


def test_solver_call_methods_are_primitives():
    assert getattr(linalg.LUSolver.__call__, "_primitive_name", None) == "lu_solve"
    assert (
        getattr(sparse.SparseLUSolver.__call__, "_primitive_name", None)
        == "sparse_lu_solve"
    )


def test_every_registered_primitive_has_rule_or_fallback():
    uncovered = [
        name
        for name in registered_primitives()
        if not has_batch_rule(name) and name not in declared_fallbacks()
    ]
    assert uncovered == [], (
        "registered primitives without a batching rule or declared "
        f"fallback opt-out: {uncovered}"
    )


def test_conformance_table_covers_registry(batching_rule_table):
    covered = {c.name for c in batching_rule_table}
    missing = set(registered_primitives()) - covered
    assert missing == set(), (
        f"registered primitives with no conformance case: {missing}"
    )


def test_table_names_are_registered(batching_rule_table):
    unknown = {c.name for c in batching_rule_table} - set(registered_primitives())
    assert unknown == set(), f"conformance cases for unknown primitives: {unknown}"


# ----------------------------------------------------------------------
# Declared-fallback graceful degradation
# ----------------------------------------------------------------------
def test_declared_fallback_primitive_degrades_to_loop():
    # A primitive registered with fallback=True gets the differentiable
    # getitem → op → stack loop under vbatch — no rule required, results
    # and gradients match the serial loop bitwise.
    name = "_conformance_fallback_probe"

    @batching.primitive(name, fallback=True)
    def odd_einsum(a, b):
        return ops.sum_(ops.mul(a, b), axis=0)

    try:
        assert name in declared_fallbacks()
        assert not has_batch_rule(name)
        rng = np.random.default_rng(7)
        xs = rng.standard_normal((4, 5))
        w = rng.standard_normal(5)

        xt = tensor(xs, requires_grad=True)
        out = vbatch(lambda a: odd_einsum(a, w))(xt)
        ref = np.stack([asdata(odd_einsum(x, w)) for x in xs])
        assert np.array_equal(out.data, ref)

        cot = rng.standard_normal(out.shape)
        out.backward(cot)
        for i in range(4):
            it = tensor(xs[i], requires_grad=True)
            odd_einsum(it, w).backward(cot[i])
            assert np.array_equal(xt.grad[i], it.grad)
    finally:
        batching._PRIMITIVES.pop(name, None)
        batching._WRAPPERS.pop(name, None)
        batching._FALLBACK_DECLARED.discard(name)


def test_undeclared_primitive_without_rule_takes_loop():
    # Even with no rule AND no declaration the dispatcher must not error —
    # the completeness check is what flags the omission, not a crash.
    name = "_conformance_unruled_probe"

    @batching.primitive(name)
    def cube_mean(a):
        return ops.mean(ops.mul(ops.square(a), a))

    try:
        xs = np.random.default_rng(11).standard_normal((3, 4))
        out = vbatch(cube_mean)(xs)
        ref = np.stack([asdata(cube_mean(x)) for x in xs])
        assert np.array_equal(out.data, ref)
    finally:
        batching._PRIMITIVES.pop(name, None)
        batching._WRAPPERS.pop(name, None)


# ----------------------------------------------------------------------
# vbatch transform semantics
# ----------------------------------------------------------------------
class TestVbatchAPI:
    def test_in_axes_nonzero(self):
        xs = np.arange(12.0).reshape(4, 3)  # batch along axis 1
        out = vbatch(lambda x: ops.mul(x, 2.0), in_axes=1)(xs)
        assert out.shape == (3, 4)
        assert np.array_equal(out.data, (xs * 2.0).T)

    def test_out_axes_nonzero(self):
        xs = np.arange(6.0).reshape(3, 2)
        out = vbatch(lambda x: ops.mul(x, 2.0), out_axes=1)(xs)
        assert out.shape == (2, 3)
        assert np.array_equal(out.data, (xs * 2.0).T)

    def test_none_in_axes_closes_over(self):
        xs = np.arange(6.0).reshape(3, 2)
        w = np.array([2.0, 3.0])
        out = vbatch(ops.mul, in_axes=(0, None))(xs, w)
        assert np.array_equal(out.data, xs * w)

    def test_pytree_arguments(self):
        xs = {"a": np.arange(6.0).reshape(3, 2), "b": np.ones((3, 2))}
        out = vbatch(lambda p: ops.add(p["a"], p["b"]), in_axes=0)(xs)
        assert np.array_equal(out.data, xs["a"] + 1.0)

    def test_kwargs_pass_through_unbatched(self):
        xs = np.arange(12.0).reshape(3, 4)
        out = vbatch(lambda x, axis=None: ops.sum_(x, axis=axis))(xs, axis=0)
        assert np.array_equal(out.data, xs.sum(axis=1))

    def test_constant_output_is_tiled_with_summed_cotangent(self):
        w = tensor(np.array([1.0, 2.0]), requires_grad=True)
        out = vbatch(lambda x: ops.mul(w, 3.0), in_axes=0)(np.zeros((4, 2)))
        assert out.shape == (4, 2)
        out.backward(np.ones((4, 2)))
        assert np.array_equal(w.grad, np.full(2, 12.0))

    def test_mask_output_unwraps_to_bool_array(self):
        xs = np.array([[-1.0, 2.0], [3.0, -4.0]])
        out = vbatch(lambda x: x > 0.0)(xs)
        assert isinstance(out, np.ndarray) and out.dtype == bool
        assert np.array_equal(out, xs > 0.0)

    def test_inconsistent_batch_sizes_error(self):
        with pytest.raises(ValueError, match="inconsistent batch sizes"):
            vbatch(ops.add)(np.zeros((3, 2)), np.zeros((4, 2)))

    def test_no_batched_argument_error(self):
        with pytest.raises(ValueError, match="selected no argument"):
            vbatch(ops.neg, in_axes=None)(np.zeros(3))

    def test_nested_vbatch_rejected(self):
        def inner(x):
            return vbatch(ops.neg)(np.zeros((2, 2)))

        with pytest.raises(RuntimeError, match="nested vbatch"):
            vbatch(inner)(np.zeros((3, 2)))

    def test_tracer_cannot_leak_to_numpy(self):
        def bad(x):
            return np.asarray(x)

        with pytest.raises(TypeError, match="cannot be coerced"):
            vbatch(bad)(np.zeros((2, 2)))

    def test_state_resets_after_user_error(self):
        def boom(x):
            raise RuntimeError("user code failure")

        with pytest.raises(RuntimeError, match="user code failure"):
            vbatch(boom)(np.zeros((2, 2)))
        assert not batching.is_batching()
        assert batching.batch_size() == 0

    def test_gradients_flow_through_batched_program(self):
        xs = np.random.default_rng(3).standard_normal((5, 4))
        xt = tensor(xs, requires_grad=True)
        out = vbatch(lambda x: ops.sum_(ops.square(x)))(xt)
        out.backward(np.ones(5))
        assert np.array_equal(xt.grad, 2.0 * xs)

"""Adjoint-gradcheck and failure-mode suite for the Krylov backend.

The matrix-free solvers (:mod:`repro.autodiff.krylov`) are only usable
at 100k nodes if their gradients are trustworthy at 10 nodes.  These
tests pin the implicit-adjoint contract against the two direct solvers
at sizes where all three run:

- ``vjp_b`` through :class:`KrylovSolver` must match the dense
  :class:`LUSolver` and the sparse :class:`SparseLUSolver` gradients,
  for both methods (BiCGSTAB / restarted GMRES) and all three
  preconditioners;
- operator-*data* cotangents through :func:`krylov_pattern_solve` must
  match :func:`sparse_pattern_solve` (same sparse-restriction formula,
  different inner solve);
- the contract must survive ``compile=True`` replay and ``vbatch``
  composition — the two transforms the DP hot loop actually applies.

The failure-mode half pins the "never silently unconverged" policy: a
solve that misses its tolerance either raises a fully-diagnosed
:class:`KrylovConvergenceError` or (with ``fallback=True``) completes
via a direct factorisation, and emits an obs solver event either way.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.autodiff import ops
from repro.autodiff.batching import vbatch
from repro.autodiff.check import numerical_gradient
from repro.autodiff.compile import compiled_value_and_grad
from repro.autodiff.krylov import (
    KrylovConvergenceError,
    KrylovSolver,
    bicgstab,
    gmres,
    krylov_pattern_solve,
)
from repro.autodiff.linalg import LUSolver
from repro.autodiff.sparse import (
    SparseLUSolver,
    make_linear_solver,
    sparse_pattern_solve,
)
from repro.autodiff.tensor import tensor
from repro.obs import TraceRecorder

M = 10
N_RHS = 3

#: Gradient-parity tolerance between iterative and direct solvers: the
#: Krylov solves run at tol=1e-10, so the adjoint identity holds to the
#: same order; 1e-7 leaves three decades of headroom.
GRAD_RTOL = 1e-7
GRAD_ATOL = 1e-9


def _system(m: int = M, seed: int = 0):
    """A well-conditioned nonsymmetric sparse test system."""
    rng = np.random.default_rng(seed)
    d0 = rng.uniform(3.0, 4.0, m)
    dl = rng.uniform(-1.0, 1.0, m - 1)
    du = rng.uniform(-1.0, 1.0, m - 1)
    A = sp.diags([dl, d0, du], [-1, 0, 1]).tocsr()
    return A, rng


def _grad_of_loss(solver, b, cot=None):
    bt = tensor(b, requires_grad=True)
    x = solver(bt)
    if cot is None:
        ops.sum_(ops.square(x)).backward()
    else:
        x.backward(cot)
    return bt.grad


class TestVjpBMatchesDirectSolvers:
    @pytest.mark.parametrize("method", ["bicgstab", "gmres"])
    @pytest.mark.parametrize("preconditioner", ["ilu", "jacobi", None])
    def test_grad_matches_dense_and_sparse_lu(self, method, preconditioner):
        A, rng = _system()
        b = rng.standard_normal(M)

        g_dense = _grad_of_loss(LUSolver(A.toarray()), b)
        g_sparse = _grad_of_loss(SparseLUSolver(A), b)
        g_krylov = _grad_of_loss(
            KrylovSolver(A, method=method, preconditioner=preconditioner), b
        )

        np.testing.assert_allclose(g_sparse, g_dense, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(
            g_krylov, g_dense, rtol=GRAD_RTOL, atol=GRAD_ATOL
        )

    def test_grad_matches_numerical(self):
        A, rng = _system(seed=1)
        b = rng.standard_normal(M)
        ks = KrylovSolver(A)

        def loss(v):
            return ops.sum_(ops.square(ks(v)))

        bt = tensor(b, requires_grad=True)
        loss(bt).backward()
        num = numerical_gradient(lambda v: float(loss(tensor(v)).data), b)
        np.testing.assert_allclose(bt.grad, num, rtol=1e-6, atol=1e-8)

    def test_adjoint_solves_transposed_system(self):
        # The VJP is A^{-T} x̄ — check against the explicit inverse.
        A, rng = _system(seed=2)
        b = rng.standard_normal(M)
        cot = rng.standard_normal(M)
        g = _grad_of_loss(KrylovSolver(A), b, cot=cot)
        expected = np.linalg.solve(A.toarray().T, cot)
        np.testing.assert_allclose(g, expected, rtol=GRAD_RTOL, atol=GRAD_ATOL)

    def test_solve_numpy_and_transposed_match_splu(self):
        A, rng = _system(seed=3)
        b = rng.standard_normal(M)
        lu = spla.splu(sp.csc_matrix(A))
        ks = KrylovSolver(A)
        np.testing.assert_allclose(
            ks.solve_numpy(b), lu.solve(b), rtol=1e-8, atol=1e-10
        )
        np.testing.assert_allclose(
            ks.solve_transposed(b), lu.solve(b, trans="T"),
            rtol=1e-8, atol=1e-10,
        )


class TestOperatorDataCotangents:
    @pytest.mark.parametrize("method", ["bicgstab", "gmres"])
    def test_pattern_solve_grads_match_sparse_pattern_solve(self, method):
        A, rng = _system(seed=4)
        coo = A.tocoo()
        rows, cols = coo.row.astype(np.int64), coo.col.astype(np.int64)
        b = rng.standard_normal(M)
        cot = rng.standard_normal(M)

        d_ref = tensor(coo.data.copy(), requires_grad=True)
        b_ref = tensor(b, requires_grad=True)
        sparse_pattern_solve(rows, cols, (M, M), d_ref, b_ref).backward(cot)

        d_it = tensor(coo.data.copy(), requires_grad=True)
        b_it = tensor(b, requires_grad=True)
        krylov_pattern_solve(
            rows, cols, (M, M), d_it, b_it, method=method
        ).backward(cot)

        np.testing.assert_allclose(
            d_it.grad, d_ref.grad, rtol=GRAD_RTOL, atol=GRAD_ATOL
        )
        np.testing.assert_allclose(
            b_it.grad, b_ref.grad, rtol=GRAD_RTOL, atol=GRAD_ATOL
        )

    def test_pattern_data_grad_matches_numerical(self):
        A, rng = _system(7, seed=5)
        coo = A.tocoo()
        rows, cols = coo.row.astype(np.int64), coo.col.astype(np.int64)
        b = rng.standard_normal(7)

        def loss(d):
            return ops.sum_(
                ops.square(krylov_pattern_solve(rows, cols, (7, 7), d, b))
            )

        dt = tensor(coo.data.copy(), requires_grad=True)
        loss(dt).backward()
        num = numerical_gradient(
            lambda v: float(loss(tensor(v)).data), coo.data
        )
        np.testing.assert_allclose(dt.grad, num, rtol=1e-5, atol=1e-7)


class TestCompiledReplay:
    def test_compiled_value_and_grad_matches_eager(self):
        A, rng = _system(seed=6)
        ks = KrylovSolver(A)

        def loss(b):
            return ops.sum_(ops.square(ks(b)))

        compiled = compiled_value_and_grad(loss)
        b1 = rng.standard_normal(M)
        b2 = rng.standard_normal(M)

        # Eager references first: replay reuses the traced input buffer,
        # which aliases the array the trace call was given.
        refs = []
        for b in (b1, b2):
            bt = tensor(b.copy(), requires_grad=True)
            out = loss(bt)
            out.backward()
            refs.append((float(out.data), bt.grad))

        v1, g1 = compiled(b1)  # trace call
        v2, g2 = compiled(b2)  # replay call (fwd closure re-solves)

        assert v1 == pytest.approx(refs[0][0], rel=1e-12, abs=0)
        np.testing.assert_array_equal(g1, refs[0][1])
        assert v2 == pytest.approx(refs[1][0], rel=1e-12, abs=0)
        np.testing.assert_array_equal(g2, refs[1][1])

    def test_compiled_pattern_solve_rebuilds_operator(self):
        # Under replay the operator values are *constant* inputs, but the
        # fwd closure must still rebuild the holder so the adjoint runs
        # against the matching operator.
        A, rng = _system(8, seed=7)
        coo = A.tocoo()
        rows, cols = coo.row.astype(np.int64), coo.col.astype(np.int64)
        data = coo.data.copy()

        def loss(b):
            return ops.sum_(
                ops.square(
                    krylov_pattern_solve(rows, cols, (8, 8), data, b)
                )
            )

        compiled = compiled_value_and_grad(loss)
        b1, b2 = rng.standard_normal(8), rng.standard_normal(8)
        compiled(b1)
        v, g = compiled(b2)
        bt = tensor(b2, requires_grad=True)
        out = loss(bt)
        out.backward()
        assert v == pytest.approx(float(out.data), rel=1e-12, abs=0)
        np.testing.assert_array_equal(g, bt.grad)


class TestVbatchComposition:
    def test_batched_vjp_matches_independent_solves(self):
        A, rng = _system(seed=8)
        ks = KrylovSolver(A)
        B = rng.standard_normal((N_RHS, M))
        cot = rng.standard_normal((N_RHS, M))

        bt = tensor(B, requires_grad=True)
        xs = vbatch(ks)(bt)
        xs.backward(cot)

        ref = KrylovSolver(A)
        for i in range(N_RHS):
            bi = tensor(B[i], requires_grad=True)
            ref(bi).backward(cot[i])
            # Block columns run exactly the per-vector code path, so the
            # batched result is bitwise equal to independent solves.
            assert np.array_equal(xs.data[i], ref(tensor(B[i])).data), f"rhs {i}"
            assert np.array_equal(bt.grad[i], bi.grad), f"rhs {i}"

    def test_solve_block_matches_batched_rule(self):
        A, rng = _system(seed=9)
        B = rng.standard_normal((N_RHS, M))
        cot = rng.standard_normal((N_RHS, M))

        b1 = tensor(B, requires_grad=True)
        x1 = KrylovSolver(A).solve_block(b1)
        x1.backward(cot)

        b2 = tensor(B, requires_grad=True)
        x2 = vbatch(KrylovSolver(A))(b2)
        x2.backward(cot)

        assert np.array_equal(x1.data, x2.data)
        assert np.array_equal(b1.grad, b2.grad)

    def test_single_preconditioner_serves_forward_and_adjoint(self):
        A, rng = _system(seed=10)
        ks = KrylovSolver(A)
        B = rng.standard_normal((N_RHS, M))

        bt = tensor(B, requires_grad=True)
        out = vbatch(lambda b: ops.sum_(ops.square(ks(b))))(bt)
        assert ks.n_factorizations == 1
        assert ks.n_solves == 1  # ONE multi-RHS forward call
        out.backward(np.ones(N_RHS))
        assert ks.n_factorizations == 1
        assert ks.n_solves == 2  # + ONE multi-RHS adjoint call
        assert ks.n_fallbacks == 0

    def test_batched_pattern_solve_data_cotangent_matches_loop(self):
        A, rng = _system(7, seed=11)
        coo = A.tocoo()
        rows, cols = coo.row.astype(np.int64), coo.col.astype(np.int64)
        B = rng.standard_normal((N_RHS, 7))
        cot = rng.standard_normal((N_RHS, 7))

        d1 = tensor(coo.data.copy(), requires_grad=True)
        xs = vbatch(
            lambda b: krylov_pattern_solve(rows, cols, (7, 7), d1, b),
            in_axes=0,
        )(B)
        xs.backward(cot)

        d2 = tensor(coo.data.copy(), requires_grad=True)
        for i in range(N_RHS):
            krylov_pattern_solve(rows, cols, (7, 7), d2, B[i]).backward(cot[i])
        np.testing.assert_allclose(d1.grad, d2.grad, rtol=0, atol=1e-12)


class TestFailureModes:
    def _hard_system(self):
        # Unpreconditioned BiCGSTAB cannot finish this in 2 iterations.
        A, rng = _system(40, seed=12)
        return A, rng.standard_normal(40)

    def test_nonconvergence_raises_typed_error(self):
        A, b = self._hard_system()
        ks = KrylovSolver(A, preconditioner=None, maxiter=2)
        with pytest.raises(KrylovConvergenceError) as exc:
            ks.solve_numpy(b)
        err = exc.value
        assert err.method == "bicgstab"
        assert err.n == 40
        assert err.iterations <= 2
        assert err.residual > err.tol
        assert err.tol == pytest.approx(1e-10)
        assert "fallback=True" in str(err)

    def test_failure_emits_obs_event(self):
        A, b = self._hard_system()
        rec = TraceRecorder(test="krylov-failure")
        ks = KrylovSolver(A, preconditioner=None, maxiter=2, recorder=rec)
        with pytest.raises(KrylovConvergenceError):
            ks.solve_numpy(b)
        events = [e.event for e in rec.solver_events]
        assert events == ["factorize", "failure"]
        failure = rec.solver_events[-1]
        assert failure.solver == "sparse-krylov"
        assert failure.iterations is not None and failure.iterations <= 2
        assert failure.residual is not None and failure.residual > 1e-10

    def test_fallback_completes_with_direct_solve(self):
        A, b = self._hard_system()
        rec = TraceRecorder(test="krylov-fallback")
        ks = KrylovSolver(
            A, preconditioner=None, maxiter=2, fallback=True, recorder=rec
        )
        x = ks.solve_numpy(b)
        # The fallback path IS a direct splu solve — bitwise equal.
        np.testing.assert_array_equal(
            x, spla.splu(sp.csc_matrix(A)).solve(b)
        )
        assert ks.n_fallbacks == 1
        assert ks.n_factorizations == 2  # preconditioner + lazy splu
        assert [e.event for e in rec.solver_events] == [
            "factorize", "fallback",
        ]

    def test_fallback_gradient_still_matches_direct(self):
        # Even when every solve falls back, the implicit adjoint holds.
        A, b = self._hard_system()
        ks = KrylovSolver(A, preconditioner=None, maxiter=2, fallback=True)
        g_it = _grad_of_loss(ks, b)
        g_ref = _grad_of_loss(SparseLUSolver(A), b)
        assert ks.n_fallbacks == 2  # forward + adjoint
        np.testing.assert_allclose(g_it, g_ref, rtol=1e-12, atol=1e-14)

    def test_never_silently_unconverged(self):
        # Every returned solution satisfies the true-residual contract —
        # it is re-checked with one extra matvec after "convergence".
        A, rng = _system(30, seed=13)
        b = rng.standard_normal(30)
        for method in ("bicgstab", "gmres"):
            ks = KrylovSolver(A, method=method)
            x = ks.solve_numpy(b)
            rel = np.linalg.norm(b - A @ x) / np.linalg.norm(b)
            assert rel <= 10 * ks.tol, f"{method}: residual {rel:.3e}"

    def test_success_and_adjoint_events_carry_iterations(self):
        A, rng = _system(seed=14)
        rec = TraceRecorder(test="krylov-events")
        ks = KrylovSolver(A, recorder=rec)
        _grad_of_loss(ks, rng.standard_normal(M))
        events = [e.event for e in rec.solver_events]
        assert events == ["factorize", "solve", "adjoint"]
        for e in rec.solver_events[1:]:
            assert e.iterations >= 1
            assert e.residual is not None and e.residual <= 10 * ks.tol
            assert e.nnz == ks.nnz

    def test_bicgstab_breakdown_restart_on_boundary_supported_rhs(self):
        # Regression: collocation right-hand sides live on Dirichlet rows
        # only; the equilibrated ILU solves those rows exactly in one
        # step, making the residual exactly orthogonal to the shadow
        # vector r̂ = b (rho == 0).  The recurrence must restart with a
        # fresh shadow vector and converge, not report breakdown.
        from repro.cloud.square import SquareCloud
        from repro.pde.laplace import LaplaceControlProblem

        problem = LaplaceControlProblem(SquareCloud(12), backend="local")
        A = problem.system
        b = np.zeros(A.shape[0])
        b[problem.cloud.boundary] = 1.0

        ks = KrylovSolver(A)  # bicgstab + equilibrated ILU
        x = ks.solve_numpy(b)
        ref = spla.splu(sp.csc_matrix(A)).solve(b)
        np.testing.assert_allclose(x, ref, rtol=1e-7, atol=1e-9)

    def test_zero_rhs_short_circuits(self):
        A, _ = _system(seed=15)
        ks = KrylovSolver(A)
        np.testing.assert_array_equal(ks.solve_numpy(np.zeros(M)), 0.0)
        assert ks.last_iterations == 0


class TestRawIterations:
    """The bare bicgstab/gmres routines, without the solver wrapper."""

    @pytest.mark.parametrize("run", [bicgstab, gmres])
    def test_converges_on_identity_like_system(self, run):
        A, rng = _system(seed=16)
        b = rng.standard_normal(M)
        res = run(A.__matmul__, b)
        assert res.converged
        assert res.iterations >= 1
        assert len(res.residuals) >= 1
        assert res.residuals[-1] <= 1e-10

    @pytest.mark.parametrize("run", [bicgstab, gmres])
    def test_nonconvergence_reported_not_raised(self, run):
        A, rng = _system(40, seed=17)
        b = rng.standard_normal(40)
        res = run(A.__matmul__, b, maxiter=2)
        assert not res.converged
        assert res.iterations <= 2

    def test_gmres_restart_still_converges(self):
        A, rng = _system(30, seed=18)
        b = rng.standard_normal(30)
        res = gmres(A.__matmul__, b, restart=5)
        assert res.converged
        x_ref = spla.spsolve(sp.csc_matrix(A), b)
        np.testing.assert_allclose(res.x, x_ref, rtol=1e-7, atol=1e-9)


class _DenseDuck:
    """Duck-types a sparse matrix (has ``toarray``) but is dense."""

    def __init__(self, A: np.ndarray) -> None:
        self._A = A

    def toarray(self) -> np.ndarray:
        return self._A

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        return np.array(self._A, dtype=dtype)


class TestMakeLinearSolverDispatch:
    def test_dense_direct_is_lu(self):
        A, _ = _system()
        assert isinstance(make_linear_solver(A.toarray()), LUSolver)

    @pytest.mark.parametrize(
        "convert",
        [sp.csr_matrix, sp.csc_matrix, sp.coo_matrix, sp.csr_array],
        ids=["csr_matrix", "csc_matrix", "coo_matrix", "csr_array"],
    )
    def test_sparse_direct_is_sparse_lu(self, convert):
        A, _ = _system()
        assert isinstance(make_linear_solver(convert(A)), SparseLUSolver)

    @pytest.mark.parametrize(
        "convert",
        [sp.csr_matrix, sp.csc_matrix, sp.coo_matrix, sp.csr_array],
        ids=["csr_matrix", "csc_matrix", "coo_matrix", "csr_array"],
    )
    def test_sparse_iterative_is_krylov(self, convert):
        A, _ = _system()
        s = make_linear_solver(convert(A), method="iterative")
        assert isinstance(s, KrylovSolver)

    def test_iterative_options_are_forwarded(self):
        A, _ = _system()
        s = make_linear_solver(
            A, method="iterative",
            preconditioner="jacobi", tol=1e-8, maxiter=77,
        )
        assert s.preconditioner == "jacobi"
        assert s.tol == 1e-8
        assert s.maxiter == 77

    def test_dense_iterative_raises(self):
        A, _ = _system()
        with pytest.raises(TypeError, match="scipy.sparse"):
            make_linear_solver(A.toarray(), method="iterative")

    def test_direct_with_options_raises(self):
        A, _ = _system()
        with pytest.raises(TypeError, match="unexpected options"):
            make_linear_solver(A, tol=1e-8)

    def test_unknown_method_raises(self):
        A, _ = _system()
        with pytest.raises(ValueError, match="direct.*iterative"):
            make_linear_solver(A, method="banana")

    def test_duck_typed_dense_goes_dense(self):
        # Exposing ``toarray`` is not enough to count as sparse; dispatch
        # follows scipy.sparse.issparse, like every other consumer here.
        A, _ = _system()
        duck = _DenseDuck(A.toarray())
        assert not sp.issparse(duck)
        assert isinstance(make_linear_solver(duck), LUSolver)
        with pytest.raises(TypeError, match="scipy.sparse"):
            make_linear_solver(duck, method="iterative")


class TestKrylovSolverValidation:
    def test_dense_matrix_raises_type_error(self):
        with pytest.raises(TypeError, match="scipy.sparse"):
            KrylovSolver(np.eye(4))

    def test_nonsquare_raises(self):
        with pytest.raises(ValueError, match="square"):
            KrylovSolver(sp.csr_matrix(np.ones((3, 4))))

    def test_unknown_method_raises(self):
        A, _ = _system()
        with pytest.raises(ValueError, match="unknown Krylov method"):
            KrylovSolver(A, method="jacobi-davidson")

    def test_unknown_preconditioner_raises(self):
        A, _ = _system()
        with pytest.raises(ValueError, match="unknown preconditioner"):
            KrylovSolver(A, preconditioner="amg")

"""Tests for the Tensor tape node and backward pass."""

import numpy as np
import pytest

from repro.autodiff import ops
from repro.autodiff.tensor import Tensor, asdata, no_grad, tensor, unbroadcast


class TestConstruction:
    def test_wraps_list_as_float64(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float64
        assert t.shape == (3,)

    def test_wraps_scalar(self):
        t = Tensor(2.5)
        assert t.size == 1
        assert t.item() == 2.5

    def test_tensor_idempotent(self):
        t = tensor([1.0])
        assert tensor(t) is t

    def test_tensor_upgrade_requires_grad_copies(self):
        t = tensor([1.0])
        t2 = tensor(t, requires_grad=True)
        assert t2 is not t
        assert t2.requires_grad

    def test_leaf_has_no_parents(self):
        t = Tensor([1.0])
        assert not t.needs_tape()

    def test_requires_grad_leaf_needs_tape(self):
        t = Tensor([1.0], requires_grad=True)
        assert t.needs_tape()

    def test_asdata_on_tensor_and_array(self):
        t = Tensor([1.0, 2.0])
        assert asdata(t) is t.data
        assert asdata([3.0]).dtype == np.float64

    def test_detach_cuts_tape(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2.0).detach()
        assert not y.needs_tape()

    def test_len_and_properties(self):
        t = Tensor(np.zeros((3, 4)))
        assert len(t) == 3
        assert t.ndim == 2
        assert t.size == 12


class TestBackward:
    def test_simple_chain(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x + 3.0 * x
        y.backward(np.ones(1))
        np.testing.assert_allclose(x.grad, [7.0])

    def test_backward_requires_scalar_without_seed(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        with pytest.raises(ValueError, match="scalar"):
            y.backward()

    def test_fan_out_accumulates(self):
        x = Tensor([3.0], requires_grad=True)
        y = x * x  # x used twice
        y.backward(np.ones(1))
        np.testing.assert_allclose(x.grad, [6.0])

    def test_diamond_graph(self):
        x = Tensor([2.0], requires_grad=True)
        a = x * 3.0
        b = x + 1.0
        y = a * b  # dy/dx = 3*(x+1) + 3x = 6x + 3 = 15
        y.backward(np.ones(1))
        np.testing.assert_allclose(x.grad, [15.0])

    def test_grad_accumulates_across_backwards(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward(np.ones(1))
        (x * 3.0).backward(np.ones(1))
        np.testing.assert_allclose(x.grad, [5.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward(np.ones(1))
        x.zero_grad()
        assert x.grad is None

    def test_deep_chain_no_recursion_error(self):
        # Iterative topological sort must handle graphs deeper than the
        # Python recursion limit (PDE solves unroll long loops).
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(5000):
            y = y + 0.001
        ops.sum_(y).backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_no_grad_context_prunes_tape(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.needs_tape()


class TestOperatorOverloads:
    def test_radd_rmul_with_ndarray(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = np.array([3.0, 4.0]) + x
        z = np.array([2.0, 2.0]) * y
        ops.sum_(z).backward()
        np.testing.assert_allclose(x.grad, [2.0, 2.0])

    def test_rsub_rtruediv(self):
        x = Tensor([2.0], requires_grad=True)
        y = 1.0 - x
        z = 4.0 / x
        (y + z).backward(np.ones(1))
        np.testing.assert_allclose(x.grad, [-1.0 - 1.0])

    def test_pow_and_neg(self):
        x = Tensor([3.0], requires_grad=True)
        y = -(x**2)
        y.backward(np.ones(1))
        np.testing.assert_allclose(x.grad, [-6.0])

    def test_matmul_operator(self):
        A = np.eye(2) * 2
        x = Tensor([1.0, 1.0], requires_grad=True)
        y = A @ x
        ops.sum_(y).backward()
        np.testing.assert_allclose(x.grad, [2.0, 2.0])

    def test_getitem_operator(self):
        x = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        y = x[1:]
        ops.sum_(y).backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 1.0])

    def test_comparisons_return_bool_arrays(self):
        x = Tensor([1.0, 2.0])
        assert (x > 1.5).tolist() == [False, True]
        assert (x <= 1.0).tolist() == [True, False]

    def test_method_sum_mean_reshape_ravel(self):
        x = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        assert x.sum().item() == 15.0
        assert x.mean().item() == 2.5
        assert x.reshape(3, 2).shape == (3, 2)
        assert x.ravel().shape == (6,)

    def test_transpose_property(self):
        x = Tensor(np.ones((2, 3)))
        assert x.T.shape == (3, 2)


class TestUnbroadcast:
    def test_identity_when_shapes_match(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_sums_leading_axes(self):
        g = np.ones((4, 2, 3))
        out = unbroadcast(g, (2, 3))
        np.testing.assert_allclose(out, 4 * np.ones((2, 3)))

    def test_sums_expanded_axes(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, (2, 1))
        np.testing.assert_allclose(out, 3 * np.ones((2, 1)))

    def test_scalar_target(self):
        g = np.ones((5, 5))
        out = unbroadcast(g, ())
        assert out.shape == ()
        assert out == 25.0

"""Tests for differentiable linear algebra — the DP-enabling primitives."""

import numpy as np
import pytest

from repro.autodiff import ops
from repro.autodiff.check import numerical_gradient
from repro.autodiff.functional import grad, value_and_grad
from repro.autodiff.linalg import LUSolver, lstsq, norm, solve

RNG = np.random.default_rng(3)
N = 6
A = RNG.standard_normal((N, N)) + N * np.eye(N)
SPD = A @ A.T + np.eye(N)
B = RNG.standard_normal(N)
B2 = RNG.standard_normal((N, 2))


class TestSolve:
    def test_forward_matches_numpy(self):
        x = solve(A, B)
        np.testing.assert_allclose(x.data, np.linalg.solve(A, B), rtol=1e-12)

    def test_forward_block_rhs(self):
        x = solve(A, B2)
        np.testing.assert_allclose(x.data, np.linalg.solve(A, B2), rtol=1e-12)

    def test_grad_wrt_rhs(self):
        def f(b):
            return ops.sum_(ops.square(solve(A, b)))

        g = grad(f)(B)
        num = numerical_gradient(lambda b: float(f(b).data), B)
        np.testing.assert_allclose(g, num, rtol=1e-5, atol=1e-8)

    def test_grad_wrt_matrix(self):
        def f(M):
            return ops.sum_(ops.square(solve(M, B)))

        g = grad(f)(A)
        num = numerical_gradient(lambda M: float(f(M).data), A)
        np.testing.assert_allclose(g, num, rtol=1e-4, atol=1e-7)

    def test_grad_wrt_matrix_and_rhs_jointly(self):
        w = RNG.standard_normal(N)

        def f(M, b):
            return ops.sum_(solve(M, b) * w)

        _, (gM, gb) = value_and_grad(f, argnums=(0, 1))(A, B)
        numM = numerical_gradient(lambda M: float(f(M, B).data), A.copy())
        numb = numerical_gradient(lambda b: float(f(A, b).data), B.copy())
        np.testing.assert_allclose(gM, numM, rtol=1e-4, atol=1e-7)
        np.testing.assert_allclose(gb, numb, rtol=1e-5, atol=1e-8)

    def test_cholesky_path_on_spd(self):
        x = solve(SPD, B, assume_a="pos")
        np.testing.assert_allclose(x.data, np.linalg.solve(SPD, B), rtol=1e-10)

    def test_cholesky_grad(self):
        def f(b):
            return ops.sum_(ops.square(solve(SPD, b, assume_a="pos")))

        g = grad(f)(B)
        num = numerical_gradient(lambda b: float(f(b).data), B)
        np.testing.assert_allclose(g, num, rtol=1e-5, atol=1e-8)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            solve(np.ones((2, 3)), np.ones(2))

    def test_solve_through_chain(self):
        # The DP-for-Laplace pattern: c -> rhs -> solve -> quadratic cost.
        S = RNG.standard_normal((N, 3))
        w = np.abs(RNG.standard_normal(N)) + 0.1

        def f(c):
            u = solve(A, ops.matmul(S, c) + B)
            return ops.sum_(w * ops.square(u))

        c0 = RNG.standard_normal(3)
        g = grad(f)(c0)
        num = numerical_gradient(lambda c: float(f(c).data), c0)
        np.testing.assert_allclose(g, num, rtol=1e-6, atol=1e-9)


class TestLUSolver:
    def test_matches_solve(self):
        lus = LUSolver(A)
        np.testing.assert_allclose(lus(B).data, np.linalg.solve(A, B), rtol=1e-12)

    def test_grad_matches_fresh_solve(self):
        lus = LUSolver(A)

        def f_cached(b):
            return ops.sum_(ops.square(lus(b)))

        def f_fresh(b):
            return ops.sum_(ops.square(solve(A, b)))

        g1 = grad(f_cached)(B)
        g2 = grad(f_fresh)(B)
        np.testing.assert_allclose(g1, g2, rtol=1e-12)

    def test_solve_numpy_and_transposed(self):
        lus = LUSolver(A)
        np.testing.assert_allclose(
            lus.solve_numpy(B), np.linalg.solve(A, B), rtol=1e-12
        )
        np.testing.assert_allclose(
            lus.solve_transposed(B), np.linalg.solve(A.T, B), rtol=1e-12
        )

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            LUSolver(np.ones((2, 3)))

    def test_reuse_many_rhs(self):
        lus = LUSolver(A)
        for _ in range(5):
            b = RNG.standard_normal(N)
            np.testing.assert_allclose(
                lus.solve_numpy(b), np.linalg.solve(A, b), rtol=1e-10
            )


class TestLstsq:
    def test_forward_overdetermined(self):
        M = RNG.standard_normal((10, 4))
        b = RNG.standard_normal(10)
        x = lstsq(M, b)
        expected, *_ = np.linalg.lstsq(M, b, rcond=None)
        np.testing.assert_allclose(x.data, expected, rtol=1e-10)

    def test_grad_wrt_rhs(self):
        M = RNG.standard_normal((10, 4))
        b = RNG.standard_normal(10)

        def f(bb):
            return ops.sum_(ops.square(lstsq(M, bb)))

        g = grad(f)(b)
        num = numerical_gradient(lambda bb: float(f(bb).data), b)
        np.testing.assert_allclose(g, num, rtol=1e-5, atol=1e-8)


class TestNorm:
    def test_l2_value(self):
        assert abs(float(norm(B).data) - np.linalg.norm(B)) < 1e-12

    def test_l2_grad(self):
        g = grad(lambda x: norm(x))(B)
        np.testing.assert_allclose(g, B / np.linalg.norm(B), rtol=1e-10)

    def test_l1_value(self):
        assert abs(float(norm(B, ord=1).data) - np.abs(B).sum()) < 1e-12

    def test_unsupported_order(self):
        with pytest.raises(ValueError):
            norm(B, ord=3)

"""Tests for differentiable linear algebra — the DP-enabling primitives."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autodiff import ops
from repro.autodiff.check import numerical_gradient
from repro.autodiff.functional import grad, value_and_grad
from repro.autodiff.linalg import LUSolver, lstsq, norm, solve
from repro.autodiff.sparse import (
    SparseLUSolver,
    make_linear_solver,
    sparse_matvec,
    sparse_pattern_solve,
    sparse_solve,
)

RNG = np.random.default_rng(3)
N = 6
A = RNG.standard_normal((N, N)) + N * np.eye(N)
SPD = A @ A.T + np.eye(N)
B = RNG.standard_normal(N)
B2 = RNG.standard_normal((N, 2))
AS = sp.csr_matrix(A)


class TestSolve:
    def test_forward_matches_numpy(self):
        x = solve(A, B)
        np.testing.assert_allclose(x.data, np.linalg.solve(A, B), rtol=1e-12)

    def test_forward_block_rhs(self):
        x = solve(A, B2)
        np.testing.assert_allclose(x.data, np.linalg.solve(A, B2), rtol=1e-12)

    def test_grad_wrt_rhs(self):
        def f(b):
            return ops.sum_(ops.square(solve(A, b)))

        g = grad(f)(B)
        num = numerical_gradient(lambda b: float(f(b).data), B)
        np.testing.assert_allclose(g, num, rtol=1e-5, atol=1e-8)

    def test_grad_wrt_matrix(self):
        def f(M):
            return ops.sum_(ops.square(solve(M, B)))

        g = grad(f)(A)
        num = numerical_gradient(lambda M: float(f(M).data), A)
        np.testing.assert_allclose(g, num, rtol=1e-4, atol=1e-7)

    def test_grad_wrt_matrix_and_rhs_jointly(self):
        w = RNG.standard_normal(N)

        def f(M, b):
            return ops.sum_(solve(M, b) * w)

        _, (gM, gb) = value_and_grad(f, argnums=(0, 1))(A, B)
        numM = numerical_gradient(lambda M: float(f(M, B).data), A.copy())
        numb = numerical_gradient(lambda b: float(f(A, b).data), B.copy())
        np.testing.assert_allclose(gM, numM, rtol=1e-4, atol=1e-7)
        np.testing.assert_allclose(gb, numb, rtol=1e-5, atol=1e-8)

    def test_cholesky_path_on_spd(self):
        x = solve(SPD, B, assume_a="pos")
        np.testing.assert_allclose(x.data, np.linalg.solve(SPD, B), rtol=1e-10)

    def test_cholesky_grad(self):
        def f(b):
            return ops.sum_(ops.square(solve(SPD, b, assume_a="pos")))

        g = grad(f)(B)
        num = numerical_gradient(lambda b: float(f(b).data), B)
        np.testing.assert_allclose(g, num, rtol=1e-5, atol=1e-8)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            solve(np.ones((2, 3)), np.ones(2))

    def test_solve_through_chain(self):
        # The DP-for-Laplace pattern: c -> rhs -> solve -> quadratic cost.
        S = RNG.standard_normal((N, 3))
        w = np.abs(RNG.standard_normal(N)) + 0.1

        def f(c):
            u = solve(A, ops.matmul(S, c) + B)
            return ops.sum_(w * ops.square(u))

        c0 = RNG.standard_normal(3)
        g = grad(f)(c0)
        num = numerical_gradient(lambda c: float(f(c).data), c0)
        np.testing.assert_allclose(g, num, rtol=1e-6, atol=1e-9)


class TestLUSolver:
    def test_matches_solve(self):
        lus = LUSolver(A)
        np.testing.assert_allclose(lus(B).data, np.linalg.solve(A, B), rtol=1e-12)

    def test_grad_matches_fresh_solve(self):
        lus = LUSolver(A)

        def f_cached(b):
            return ops.sum_(ops.square(lus(b)))

        def f_fresh(b):
            return ops.sum_(ops.square(solve(A, b)))

        g1 = grad(f_cached)(B)
        g2 = grad(f_fresh)(B)
        np.testing.assert_allclose(g1, g2, rtol=1e-12)

    def test_solve_numpy_and_transposed(self):
        lus = LUSolver(A)
        np.testing.assert_allclose(
            lus.solve_numpy(B), np.linalg.solve(A, B), rtol=1e-12
        )
        np.testing.assert_allclose(
            lus.solve_transposed(B), np.linalg.solve(A.T, B), rtol=1e-12
        )

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            LUSolver(np.ones((2, 3)))

    def test_reuse_many_rhs(self):
        lus = LUSolver(A)
        for _ in range(5):
            b = RNG.standard_normal(N)
            np.testing.assert_allclose(
                lus.solve_numpy(b), np.linalg.solve(A, b), rtol=1e-10
            )


class TestSparseSolve:
    def test_forward_matches_dense(self):
        x = sparse_solve(AS, B)
        np.testing.assert_allclose(x.data, np.linalg.solve(A, B), rtol=1e-10)

    def test_forward_block_rhs(self):
        x = sparse_solve(AS, B2)
        np.testing.assert_allclose(x.data, np.linalg.solve(A, B2), rtol=1e-10)

    def test_grad_wrt_rhs(self):
        def f(b):
            return ops.sum_(ops.square(sparse_solve(AS, b)))

        g = grad(f)(B)
        num = numerical_gradient(lambda b: float(f(b).data), B)
        np.testing.assert_allclose(g, num, rtol=1e-5, atol=1e-8)

    def test_grad_matches_dense_solve(self):
        # The sparse VJP is the transposed solve with the same
        # factorisation; it must agree with the dense adjoint exactly.
        def f_sparse(b):
            return ops.sum_(ops.square(sparse_solve(AS, b)))

        def f_dense(b):
            return ops.sum_(ops.square(solve(A, b)))

        np.testing.assert_allclose(
            grad(f_sparse)(B), grad(f_dense)(B), rtol=1e-9
        )

    def test_transposed_path_through_chain(self):
        # Non-symmetric A so a wrong trans flag is caught: the VJP solves
        # Aᵀw = g, which differs from A⁻¹g unless A = Aᵀ.
        assert not np.allclose(A, A.T)
        w = RNG.standard_normal(N)

        def f(b):
            return ops.sum_(sparse_solve(AS, b) * w)

        g = grad(f)(B)
        # Analytic gradient: A⁻ᵀ w.
        np.testing.assert_allclose(g, np.linalg.solve(A.T, w), rtol=1e-9)

    def test_rejects_dense_matrix(self):
        with pytest.raises(TypeError, match="sparse"):
            sparse_solve(A, B)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            sparse_solve(sp.csr_matrix(np.ones((2, 3))), np.ones(2))


class TestSparseMatvec:
    def test_forward(self):
        out = sparse_matvec(AS, B)
        np.testing.assert_allclose(out.data, A @ B, rtol=1e-12)

    def test_grad_is_transpose_product(self):
        w = RNG.standard_normal(N)

        def f(x):
            return ops.sum_(sparse_matvec(AS, x) * w)

        np.testing.assert_allclose(grad(f)(B), A.T @ w, rtol=1e-12)

    def test_rejects_dense(self):
        with pytest.raises(TypeError, match="sparse"):
            sparse_matvec(A, B)


class TestSparseLUSolver:
    def test_matches_dense_lusolver(self):
        s = SparseLUSolver(AS)
        d = LUSolver(A)
        np.testing.assert_allclose(s(B).data, d(B).data, rtol=1e-10)

    def test_factorizes_once(self):
        s = SparseLUSolver(AS)
        for _ in range(4):
            s(RNG.standard_normal(N))
            s.solve_numpy(RNG.standard_normal(N))
            s.solve_transposed(RNG.standard_normal(N))
        assert s.n_factorizations == 1

    def test_grad_wrt_rhs(self):
        s = SparseLUSolver(AS)

        def f(b):
            return ops.sum_(ops.square(s(b)))

        g = grad(f)(B)
        num = numerical_gradient(lambda b: float(f(b).data), B)
        np.testing.assert_allclose(g, num, rtol=1e-5, atol=1e-8)

    def test_solve_transposed(self):
        s = SparseLUSolver(AS)
        np.testing.assert_allclose(
            s.solve_transposed(B), np.linalg.solve(A.T, B), rtol=1e-10
        )

    def test_rejects_dense(self):
        with pytest.raises(TypeError, match="sparse"):
            SparseLUSolver(A)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            SparseLUSolver(sp.csr_matrix(np.ones((2, 3))))

    def test_make_linear_solver_dispatch(self):
        assert isinstance(make_linear_solver(AS), SparseLUSolver)
        assert isinstance(make_linear_solver(A), LUSolver)


class TestSparsePatternSolve:
    """Solve with Tensor-valued matrix entries on a fixed pattern."""

    def setup_method(self):
        self.rows, self.cols = AS.nonzero()
        self.rows = self.rows.astype(np.int64)
        self.cols = self.cols.astype(np.int64)
        self.data0 = np.asarray(
            AS[self.rows, self.cols], dtype=np.float64
        ).ravel()

    def test_forward_matches_dense(self):
        x = sparse_pattern_solve(self.rows, self.cols, (N, N), self.data0, B)
        np.testing.assert_allclose(x.data, np.linalg.solve(A, B), rtol=1e-10)

    def test_grad_wrt_rhs(self):
        def f(b):
            return ops.sum_(
                ops.square(
                    sparse_pattern_solve(
                        self.rows, self.cols, (N, N), self.data0, b
                    )
                )
            )

        g = grad(f)(B)
        num = numerical_gradient(lambda b: float(f(b).data), B)
        np.testing.assert_allclose(g, num, rtol=1e-5, atol=1e-8)

    def test_grad_wrt_matrix_values(self):
        # The sparse restriction of the dense Ā = -w xᵀ formula.
        def f(d):
            return ops.sum_(
                ops.square(
                    sparse_pattern_solve(self.rows, self.cols, (N, N), d, B)
                )
            )

        g = grad(f)(self.data0)
        num = numerical_gradient(lambda d: float(f(d).data), self.data0.copy())
        np.testing.assert_allclose(g, num, rtol=1e-4, atol=1e-7)

    def test_grad_wrt_values_and_rhs_jointly(self):
        w = RNG.standard_normal(N)

        def f(d, b):
            return ops.sum_(
                sparse_pattern_solve(self.rows, self.cols, (N, N), d, b) * w
            )

        _, (gd, gb) = value_and_grad(f, argnums=(0, 1))(self.data0, B)
        numd = numerical_gradient(
            lambda d: float(f(d, B).data), self.data0.copy()
        )
        numb = numerical_gradient(lambda b: float(f(self.data0, b).data), B)
        np.testing.assert_allclose(gd, numd, rtol=1e-4, atol=1e-7)
        np.testing.assert_allclose(gb, numb, rtol=1e-5, atol=1e-8)

    def test_block_rhs_grad_wrt_values(self):
        def f(d):
            return ops.sum_(
                ops.square(
                    sparse_pattern_solve(self.rows, self.cols, (N, N), d, B2)
                )
            )

        g = grad(f)(self.data0)
        num = numerical_gradient(lambda d: float(f(d).data), self.data0.copy())
        np.testing.assert_allclose(g, num, rtol=1e-4, atol=1e-7)

    def test_rejects_pattern_mismatch(self):
        with pytest.raises(ValueError, match="pattern"):
            sparse_pattern_solve(
                self.rows, self.cols, (N, N), self.data0[:-1], B
            )


class TestLocalBackendGradient:
    """DP gradient on the sparse Laplace backend vs finite differences."""

    def test_dp_gradient_matches_fd(self):
        from repro.cloud.square import SquareCloud
        from repro.control.dp import LaplaceDP
        from repro.pde.laplace import LaplaceControlProblem

        problem = LaplaceControlProblem(SquareCloud(10), backend="local")
        oracle = LaplaceDP(problem)
        c = 0.1 * np.sin(np.linspace(0, np.pi, problem.n_control))
        _, g = oracle.value_and_grad(c)
        num = numerical_gradient(oracle.value, c, eps=1e-6)
        denom = max(np.linalg.norm(num), 1e-12)
        rel = np.linalg.norm(g - num) / denom
        assert rel <= 1e-6, f"relative gradient error {rel:.2e}"


class TestLstsq:
    def test_forward_overdetermined(self):
        M = RNG.standard_normal((10, 4))
        b = RNG.standard_normal(10)
        x = lstsq(M, b)
        expected, *_ = np.linalg.lstsq(M, b, rcond=None)
        np.testing.assert_allclose(x.data, expected, rtol=1e-10)

    def test_grad_wrt_rhs(self):
        M = RNG.standard_normal((10, 4))
        b = RNG.standard_normal(10)

        def f(bb):
            return ops.sum_(ops.square(lstsq(M, bb)))

        g = grad(f)(b)
        num = numerical_gradient(lambda bb: float(f(bb).data), b)
        np.testing.assert_allclose(g, num, rtol=1e-5, atol=1e-8)


class TestNorm:
    def test_l2_value(self):
        assert abs(float(norm(B).data) - np.linalg.norm(B)) < 1e-12

    def test_l2_grad(self):
        g = grad(lambda x: norm(x))(B)
        np.testing.assert_allclose(g, B / np.linalg.norm(B), rtol=1e-10)

    def test_l1_value(self):
        assert abs(float(norm(B, ord=1).data) - np.abs(B).sum()) < 1e-12

    def test_unsupported_order(self):
        with pytest.raises(ValueError):
            norm(B, ord=3)

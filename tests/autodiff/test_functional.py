"""Tests for grad / value_and_grad / jacobian transforms."""

import numpy as np
import pytest

from repro.autodiff import ops
from repro.autodiff.functional import grad, jacobian, stop_gradient, value_and_grad
from repro.autodiff.tensor import Tensor


class TestValueAndGrad:
    def test_scalar_function(self):
        v, g = value_and_grad(lambda x: ops.sum_(ops.square(x)))(np.array([1.0, 2.0]))
        assert v == 5.0
        np.testing.assert_allclose(g, [2.0, 4.0])

    def test_returns_python_float(self):
        v, _ = value_and_grad(lambda x: ops.sum_(x))(np.ones(3))
        assert isinstance(v, float)

    def test_multiple_argnums(self):
        def f(a, b):
            return ops.sum_(a * b)

        v, (ga, gb) = value_and_grad(f, argnums=(0, 1))(
            np.array([1.0, 2.0]), np.array([3.0, 4.0])
        )
        assert v == 11.0
        np.testing.assert_allclose(ga, [3.0, 4.0])
        np.testing.assert_allclose(gb, [1.0, 2.0])

    def test_second_argnum_only(self):
        def f(a, b):
            return ops.sum_(a * b)

        _, gb = value_and_grad(f, argnums=1)(np.ones(2), np.array([5.0, 6.0]))
        np.testing.assert_allclose(gb, [1.0, 1.0])

    def test_non_scalar_output_raises(self):
        with pytest.raises(ValueError, match="scalar"):
            value_and_grad(lambda x: x * 2.0)(np.ones(3))

    def test_unused_argument_gets_zero_grad(self):
        def f(a, b):
            return ops.sum_(a)

        _, (ga, gb) = value_and_grad(f, argnums=(0, 1))(np.ones(2), np.ones(3))
        np.testing.assert_allclose(gb, np.zeros(3))

    def test_kwargs_passed_through(self):
        def f(a, scale=1.0):
            return ops.sum_(a) * scale

        v, g = value_and_grad(f)(np.ones(2), scale=3.0)
        assert v == 6.0
        np.testing.assert_allclose(g, [3.0, 3.0])


class TestGrad:
    def test_matches_analytic(self):
        g = grad(lambda x: ops.sum_(ops.sin(x)))(np.array([0.0, np.pi / 2]))
        np.testing.assert_allclose(g, np.cos([0.0, np.pi / 2]), atol=1e-14)

    def test_grad_of_float_output(self):
        # f may return a plain float (e.g. a constant branch)
        g = grad(lambda x: ops.mean(x) * 1.0)(np.ones(4))
        np.testing.assert_allclose(g, 0.25 * np.ones(4))

    def test_scalar_input(self):
        g = grad(lambda x: x * x)(np.array(3.0))
        np.testing.assert_allclose(g, 6.0)


class TestJacobian:
    def test_linear_map(self):
        A = np.arange(6, dtype=float).reshape(2, 3)
        J = jacobian(lambda x: ops.matmul(A, x))(np.ones(3))
        np.testing.assert_allclose(J, A)

    def test_elementwise(self):
        x = np.array([1.0, 2.0])
        J = jacobian(lambda t: ops.square(t))(x)
        np.testing.assert_allclose(J, np.diag(2 * x))

    def test_shape_matrix_output(self):
        x = np.ones(2)
        J = jacobian(lambda t: ops.stack([t, 2.0 * t]))(x)
        assert J.shape == (2, 2, 2)


class TestStopGradient:
    def test_blocks_flow(self):
        def f(x):
            return ops.sum_(stop_gradient(x) * x)

        g = grad(f)(np.array([2.0, 3.0]))
        # d/dx [const * x] = const = x values
        np.testing.assert_allclose(g, [2.0, 3.0])

    def test_on_raw_array(self):
        t = stop_gradient(np.ones(2))
        assert isinstance(t, Tensor)
        assert not t.needs_tape()

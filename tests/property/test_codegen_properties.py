"""Property-based tests of the codegen lowering passes (hypothesis).

Three invariants over randomised inputs:

- **Arena liveness** — the slot allocator never hands two live intervals
  the same slot, for any start-sorted request stream over any mix of
  shapes and dtypes (and its own ``verify()`` agrees).
- **Unbroadcast plans** — the static reduction plan the emitter bakes
  into generated source produces bitwise the same array as the eager
  tape's dynamic ``unbroadcast`` helper, for every broadcastable shape
  pair.
- **Program parity** — randomly composed elementwise/broadcast programs
  execute bitwise-identically under the codegen tier and the eager tape.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import ops
from repro.autodiff.compile import compiled_value_and_grad
from repro.autodiff.functional import value_and_grad
from repro.autodiff.lowering import ArenaPlanner, unbroadcast_plan
from repro.autodiff.tensor import unbroadcast

# ----------------------------------------------------------------------
# Arena liveness
# ----------------------------------------------------------------------
SHAPES = [(4,), (2, 3), (8,), (1, 5), ()]
DTYPES = ["float64", "float32"]

#: (shape_idx, dtype_idx, start_gap >= 0, duration >= 0)
request = st.tuples(
    st.integers(0, len(SHAPES) - 1),
    st.integers(0, len(DTYPES) - 1),
    st.integers(0, 3),
    st.integers(0, 6),
)


@given(st.lists(request, min_size=1, max_size=40))
@settings(max_examples=200, deadline=None)
def test_arena_never_shares_a_slot_between_live_intervals(reqs):
    planner = ArenaPlanner()
    start = 0
    for shape_i, dtype_i, gap, dur in reqs:
        start += gap
        planner.alloc(SHAPES[shape_i], DTYPES[dtype_i], start, start + dur)

    planner.verify()  # the planner's own invariant check must agree …

    # … and so must a from-scratch overlap scan over the recorded plan.
    live = {}
    for slot, s, e in sorted(planner.intervals, key=lambda t: t[1]):
        if slot in live:
            assert live[slot] < s, (
                f"slot {slot} reassigned at {s} while live until {live[slot]}"
            )
        live[slot] = e
    # Slots are only ever created when no compatible slot is free.
    assert len(planner.slots) <= len(planner.intervals)


def test_arena_requests_must_be_start_sorted():
    import pytest

    from repro.autodiff.lowering import LoweringError

    planner = ArenaPlanner()
    planner.alloc((4,), "float64", 10, 12)
    with pytest.raises(LoweringError):
        planner.alloc((4,), "float64", 9, 11)


# ----------------------------------------------------------------------
# Unbroadcast plans vs the eager helper
# ----------------------------------------------------------------------
@st.composite
def broadcast_pair(draw):
    """(out_shape, target_shape) with target broadcastable to out."""
    out = tuple(draw(st.lists(st.integers(1, 4), min_size=0, max_size=4)))
    n_keep = draw(st.integers(0, len(out)))
    target = tuple(
        1 if draw(st.booleans()) else s for s in out[len(out) - n_keep:]
    )
    return out, target


@given(broadcast_pair(), st.integers(0, 2**32 - 1))
@settings(max_examples=200, deadline=None)
def test_unbroadcast_plan_matches_eager_helper(pair, seed):
    out_shape, target_shape = pair
    g = np.random.default_rng(seed).standard_normal(out_shape)
    ref = unbroadcast(g, target_shape)

    plan = unbroadcast_plan(out_shape, target_shape)
    if plan is None:
        assert out_shape == target_shape
        red = g
    else:
        lead, keep = plan
        red = g
        if lead:
            red = red.sum(axis=lead)
        if keep:
            red = red.sum(axis=keep, keepdims=True)
        red = red.reshape(target_shape)
    assert red.shape == ref.shape
    np.testing.assert_array_equal(red, ref)


# ----------------------------------------------------------------------
# Random program parity: codegen tier == eager tape, bitwise
# ----------------------------------------------------------------------
UNARY = [ops.exp, ops.sin, ops.tanh, ops.square, ops.neg, ops.sigmoid]
BINARY = [ops.add, ops.sub, ops.mul]


@st.composite
def program(draw):
    """A random chain of unary/binary elementwise ops with broadcasts."""
    steps = draw(
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 5), st.integers(0, 2)),
            min_size=1,
            max_size=6,
        )
    )
    return steps


@given(program(), st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_random_elementwise_program_parity(steps, seed):
    rng = np.random.default_rng(seed)
    x0 = rng.uniform(-1.0, 1.0, (4, 3))
    y0 = rng.uniform(-1.0, 1.0, (3,))  # broadcast partner

    def f(x, y):
        t = x
        for is_binary, op_i, operand in steps:
            if is_binary:
                other = (y, x0, 0.5)[operand]
                t = BINARY[op_i % len(BINARY)](t, other)
            else:
                t = UNARY[op_i](t)
        return ops.sum_(ops.square(t)) + ops.sum_(y * 2.0)

    ev, eg = value_and_grad(f, argnums=(0, 1))(x0, y0)
    vg = compiled_value_and_grad(f, argnums=(0, 1), mode="codegen")
    vg(x0, y0)  # trace
    cv, cg = vg(x0, y0)  # generated-source replay
    assert cv == ev
    for a, b in zip(cg, eg):
        np.testing.assert_array_equal(np.asarray(a), np.asarray(b))

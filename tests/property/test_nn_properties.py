"""Property-based tests of NN-library invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.mlp import MLP
from repro.nn.optimizers import Adam, clip_grad_norm, global_grad_norm
from repro.nn.pytree import tree_flatten, tree_unflatten
from repro.nn.schedules import paper_schedule

SAFE = st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False, width=64)


class TestPytreeRoundtrip:
    @given(
        st.recursive(
            st.floats(allow_nan=False, allow_infinity=False, width=64),
            lambda children: st.one_of(
                st.lists(children, max_size=3),
                st.dictionaries(st.sampled_from("abcd"), children, max_size=3),
            ),
            max_leaves=10,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_flatten_unflatten_identity(self, tree):
        leaves, td = tree_flatten(tree)
        assert tree_unflatten(td, leaves) == tree


class TestMLPInvariants:
    @given(arrays(np.float64, (4, 2), elements=SAFE), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_deterministic_forward(self, x, seed):
        m = MLP(2, (6,), 1)
        p = m.init_params(seed)
        y1 = m.apply(p, x).data
        y2 = m.apply(p, x).data
        np.testing.assert_array_equal(y1, y2)

    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_param_count_matches_shapes(self, seed):
        m = MLP(2, (7, 5), 3)
        p = m.init_params(seed)
        total = sum(layer["W"].size + layer["b"].size for layer in p)
        assert total == m.n_params()


class TestOptimizerInvariants:
    @given(arrays(np.float64, 5, elements=SAFE))
    @settings(max_examples=40, deadline=None)
    def test_adam_step_bounded_by_lr(self, g):
        """|Δp| ≤ lr / (1 − tiny) for the first Adam step, any gradient."""
        opt = Adam(lr=0.01)
        p = np.zeros(5)
        st_ = opt.init(p)
        p2, _ = opt.step(p, g, st_)
        assert np.all(np.abs(p2) <= 0.0100001 + 1e-12)

    @given(
        arrays(np.float64, 4, elements=SAFE),
        st.floats(0.01, 10.0, width=64),
    )
    @settings(max_examples=40, deadline=None)
    def test_clip_never_exceeds_max(self, g, max_norm):
        clipped = clip_grad_norm({"g": g}, max_norm)
        assert global_grad_norm(clipped) <= max_norm + 1e-9


class TestScheduleInvariants:
    @given(st.floats(1e-6, 1.0, width=64), st.integers(4, 1000))
    @settings(max_examples=40, deadline=None)
    def test_paper_schedule_endpoints(self, lr, total):
        s = paper_schedule(lr)
        assert s(0, total) == lr
        assert abs(s(total - 1, total) - lr * 0.01) < 1e-15 * max(1.0, lr)

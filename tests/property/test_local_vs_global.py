"""Local (sparse RBF-FD) vs global (dense collocation) operator agreement.

Two property families:

1. **Polynomial exactness** — both regimes reproduce derivatives of any
   polynomial up to the stencil's augmentation degree *exactly*, so on
   random affine (degree 1) and quadratic (degree 2) fields the sparse
   ``∂x``, ``∂y`` and ``Δ`` operators must agree with the dense ones to
   rounding.
2. **Convergence in stencil size** — as the RBF-FD stencil grows towards
   the whole cloud, the :class:`~repro.rbf.solver.LocalRBFSolver` solution
   approaches the dense :class:`~repro.rbf.solver.RBFSolver` solution on
   the same :class:`~repro.rbf.solver.LinearPDEProblem`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.square import SquareCloud
from repro.rbf.assembly import LinearOperator2D
from repro.rbf.kernels import polyharmonic
from repro.rbf.local import build_local_operators
from repro.rbf.operators import build_nodal_operators
from repro.rbf.solver import (
    BoundaryCondition,
    LinearPDEProblem,
    LocalRBFSolver,
    RBFSolver,
)

CLOUD = SquareCloud(9)
DENSE_1 = build_nodal_operators(CLOUD, polyharmonic(3), 1)
LOCAL_1 = build_local_operators(CLOUD, polyharmonic(3), 1)
DENSE_2 = build_nodal_operators(CLOUD, polyharmonic(5), 2)
LOCAL_2 = build_local_operators(CLOUD, polyharmonic(5), 2)

coeff = st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False, width=64)


class TestPolynomialExactness:
    """Both backends differentiate stencil-degree polynomials exactly —
    hence agree with each other on them."""

    @given(coeff, coeff, coeff)
    @settings(max_examples=30, deadline=None)
    def test_affine_fields_degree1(self, a, b, c):
        u = a + b * CLOUD.x + c * CLOUD.y
        scale = 1 + abs(a) + abs(b) + abs(c)
        for dense_op, local_op, exact in (
            (DENSE_1.dx, LOCAL_1.dx, np.full(CLOUD.n, b)),
            (DENSE_1.dy, LOCAL_1.dy, np.full(CLOUD.n, c)),
            (DENSE_1.lap, LOCAL_1.lap, np.zeros(CLOUD.n)),
        ):
            np.testing.assert_allclose(local_op @ u, exact, atol=1e-5 * scale)
            np.testing.assert_allclose(
                local_op @ u, dense_op @ u, atol=2e-5 * scale
            )

    @given(coeff, coeff, coeff)
    @settings(max_examples=30, deadline=None)
    def test_quadratic_fields_degree2(self, a, b, c):
        x, y = CLOUD.x, CLOUD.y
        u = a * x**2 + b * x * y + c * y**2
        du_dx = 2 * a * x + b * y
        du_dy = b * x + 2 * c * y
        lap_u = np.full(CLOUD.n, 2 * a + 2 * c)
        scale = 1 + abs(a) + abs(b) + abs(c)
        for dense_op, local_op, exact in (
            (DENSE_2.dx, LOCAL_2.dx, du_dx),
            (DENSE_2.dy, LOCAL_2.dy, du_dy),
            (DENSE_2.lap, LOCAL_2.lap, lap_u),
        ):
            np.testing.assert_allclose(local_op @ u, exact, atol=1e-4 * scale)
            np.testing.assert_allclose(
                local_op @ u, dense_op @ u, atol=2e-4 * scale
            )

    def test_normal_rows_agree_on_affine(self):
        # Boundary-normal rows are n·∇, so they are exact on affine
        # fields in both regimes.
        u = 0.4 + 1.3 * CLOUD.x - 0.7 * CLOUD.y
        bnd = CLOUD.boundary
        expected = CLOUD.normals[bnd] @ np.array([1.3, -0.7])
        np.testing.assert_allclose(
            (LOCAL_1.normal @ u)[bnd], expected, atol=1e-5
        )
        np.testing.assert_allclose(
            (LOCAL_1.normal @ u)[bnd], (DENSE_1.normal @ u)[bnd], atol=2e-5
        )

    def test_local_operators_are_sparse(self):
        # k nonzeros per row — the entire point of the local backend.
        k = LOCAL_1.stencil_size
        assert LOCAL_1.dx.nnz == CLOUD.n * k
        assert LOCAL_1.dx.nnz < CLOUD.n**2


def _dirichlet_problem():
    def exact(p):
        return np.sin(np.pi * p[:, 0]) * np.sinh(np.pi * p[:, 1]) / np.sinh(
            np.pi
        )

    return (
        LinearPDEProblem(
            operator=LinearOperator2D(lap=1.0),
            bcs={
                g: BoundaryCondition("dirichlet", value=exact)
                for g in ("top", "bottom", "left", "right")
            },
        ),
        exact,
    )


class TestSolverConvergence:
    """LocalRBFSolver → RBFSolver as the stencil grows to the cloud."""

    def test_converges_to_dense_with_stencil_size(self):
        cloud = SquareCloud(12)
        problem, _ = _dirichlet_problem()
        u_dense = RBFSolver(cloud).solve(problem)
        errs = []
        for k in (12, 25, 50):
            u_local = LocalRBFSolver(cloud, stencil_size=k).solve(problem)
            errs.append(float(np.max(np.abs(u_local - u_dense))))
        # Monotone-ish decrease: the largest stencil is far closer to the
        # dense solution than the smallest.
        assert errs[-1] < errs[0]
        assert errs[-1] < 1e-2

    def test_both_solvers_accurate_on_harmonic_solution(self):
        cloud = SquareCloud(14)
        problem, exact = _dirichlet_problem()
        truth = exact(cloud.points)
        err_dense = np.max(np.abs(RBFSolver(cloud).solve(problem) - truth))
        err_local = np.max(
            np.abs(
                LocalRBFSolver(cloud, stencil_size=15).solve(problem) - truth
            )
        )
        assert err_dense < 5e-2
        assert err_local < 1e-1

    def test_local_solver_matches_dense_on_affine_exactly(self):
        # An affine field is in both trial spaces: Δu = 0 with affine
        # Dirichlet data is reproduced exactly by both backends.
        cloud = SquareCloud(10)

        def affine(p):
            return 0.3 + 1.1 * p[:, 0] - 0.6 * p[:, 1]

        problem = LinearPDEProblem(
            operator=LinearOperator2D(lap=1.0),
            bcs={
                g: BoundaryCondition("dirichlet", value=affine)
                for g in ("top", "bottom", "left", "right")
            },
        )
        truth = affine(cloud.points)
        np.testing.assert_allclose(
            RBFSolver(cloud).solve(problem), truth, atol=1e-6
        )
        np.testing.assert_allclose(
            LocalRBFSolver(cloud).solve(problem), truth, atol=1e-5
        )

"""Property-based tests of cloud-generation invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.base import KIND_ORDER
from repro.cloud.channel import ChannelCloud, ChannelGeometry
from repro.cloud.halton import halton_sequence
from repro.cloud.square import SquareCloud


class TestSquareCloudInvariants:
    @given(st.integers(3, 16), st.integers(3, 16))
    @settings(max_examples=25, deadline=None)
    def test_counts_add_up(self, nx, ny):
        c = SquareCloud(nx, ny)
        counts = c.counts()
        assert sum(counts.values()) == c.n == nx * ny
        # 2 full vertical sides + 2 horizontal sides without corners.
        assert counts["dirichlet"] == 2 * ny + 2 * (nx - 2)

    @given(st.integers(3, 12), st.sampled_from([None, "halton", "jitter"]))
    @settings(max_examples=25, deadline=None)
    def test_ordering_invariant(self, nx, scatter):
        c = SquareCloud(nx, scatter=scatter)
        ranks = [KIND_ORDER.index(c.kinds[g]) for g in c.group_of]
        assert ranks == sorted(ranks)

    @given(st.integers(3, 12))
    @settings(max_examples=20, deadline=None)
    def test_boundary_nodes_on_boundary(self, nx):
        c = SquareCloud(nx)
        b = c.points[c.boundary]
        on_edge = (
            (np.abs(b[:, 0]) < 1e-14)
            | (np.abs(b[:, 0] - 1) < 1e-14)
            | (np.abs(b[:, 1]) < 1e-14)
            | (np.abs(b[:, 1] - 1) < 1e-14)
        )
        assert np.all(on_edge)


class TestChannelCloudInvariants:
    @given(
        st.integers(8, 24),
        st.integers(5, 14),
        st.floats(0.0, 0.95, width=64),
        st.floats(0.0, 1.0, width=64),
    )
    @settings(max_examples=25, deadline=None)
    def test_all_nodes_in_domain(self, nx, ny, grading, jitter):
        geo = ChannelGeometry()
        c = ChannelCloud(nx, ny, geometry=geo, grading=grading, jitter=jitter)
        assert c.points[:, 0].min() >= -1e-12
        assert c.points[:, 0].max() <= geo.lx + 1e-12
        assert c.points[:, 1].min() >= -1e-12
        assert c.points[:, 1].max() <= geo.ly + 1e-12

    @given(st.integers(8, 20), st.integers(5, 12))
    @settings(max_examples=20, deadline=None)
    def test_normals_unit_length(self, nx, ny):
        c = ChannelCloud(nx, ny)
        lens = np.linalg.norm(c.normals[c.boundary], axis=1)
        np.testing.assert_allclose(lens, 1.0, atol=1e-12)


class TestHaltonInvariants:
    @given(st.integers(1, 300), st.integers(1, 50))
    @settings(max_examples=30, deadline=None)
    def test_in_open_unit_square(self, n, start):
        h = halton_sequence(n, 2, start=start)
        assert np.all((h > 0) & (h < 1))

    @given(st.integers(2, 200))
    @settings(max_examples=20, deadline=None)
    def test_prefix_property(self, n):
        """The first n−1 points of an n-point sequence equal the (n−1)-point
        sequence — Halton is extensible."""
        a = halton_sequence(n, 2)
        b = halton_sequence(n - 1, 2)
        np.testing.assert_array_equal(a[: n - 1], b)

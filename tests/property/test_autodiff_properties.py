"""Property-based tests of autodiff invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autodiff import ops
from repro.autodiff.functional import grad, value_and_grad

SAFE = st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False, width=64)
POSITIVE = st.floats(0.1, 10.0, allow_nan=False, allow_infinity=False, width=64)


def vec(elements=SAFE, min_side=1, max_side=8):
    return arrays(
        np.float64,
        array_shapes(min_dims=1, max_dims=1, min_side=min_side, max_side=max_side),
        elements=elements,
    )


class TestLinearity:
    @given(vec(), st.floats(-5, 5, allow_nan=False, width=64))
    @settings(max_examples=50, deadline=None)
    def test_grad_is_linear_in_scaling(self, x, a):
        """∇(a·f) = a·∇f for any scalar a."""
        g1 = grad(lambda t: ops.sum_(ops.square(t)))(x)
        g2 = grad(lambda t: a * ops.sum_(ops.square(t)))(x)
        np.testing.assert_allclose(g2, a * g1, rtol=1e-10, atol=1e-10)

    @given(vec())
    @settings(max_examples=50, deadline=None)
    def test_grad_of_sum_is_sum_of_grads(self, x):
        f1 = lambda t: ops.sum_(ops.square(t))
        f2 = lambda t: ops.sum_(ops.sin(t))
        g_sum = grad(lambda t: f1(t) + f2(t))(x)
        g1, g2 = grad(f1)(x), grad(f2)(x)
        np.testing.assert_allclose(g_sum, g1 + g2, rtol=1e-10, atol=1e-12)

    @given(vec())
    @settings(max_examples=30, deadline=None)
    def test_grad_of_linear_functional_is_constant(self, x):
        w = np.arange(1.0, x.size + 1.0)
        g = grad(lambda t: ops.sum_(w * t))(x)
        np.testing.assert_allclose(g, w, atol=1e-14)


class TestChainRuleInvariants:
    @given(vec(POSITIVE))
    @settings(max_examples=50, deadline=None)
    def test_log_exp_roundtrip_gradient(self, x):
        """d/dx sum(log(exp(x))) = 1."""
        g = grad(lambda t: ops.sum_(ops.log(ops.exp(t))))(x)
        np.testing.assert_allclose(g, np.ones_like(x), rtol=1e-9)

    @given(vec())
    @settings(max_examples=50, deadline=None)
    def test_sin_cos_pythagoras_gradient(self, x):
        """sin² + cos² = 1 ⇒ zero gradient."""
        g = grad(
            lambda t: ops.sum_(ops.square(ops.sin(t)) + ops.square(ops.cos(t)))
        )(x)
        np.testing.assert_allclose(g, 0.0, atol=1e-12)

    @given(vec(SAFE, min_side=2, max_side=6))
    @settings(max_examples=50, deadline=None)
    def test_value_consistent_with_forward(self, x):
        v, _ = value_and_grad(lambda t: ops.mean(ops.tanh(t)))(x)
        assert abs(v - np.tanh(x).mean()) < 1e-12


class TestStructuralOps:
    @given(vec(SAFE, min_side=2, max_side=8))
    @settings(max_examples=50, deadline=None)
    def test_concat_split_gradient_identity(self, x):
        """Splitting then concatenating is the identity; so is its VJP."""
        k = x.size // 2

        def f(t):
            return ops.sum_(ops.square(ops.concatenate([t[:k], t[k:]])))

        g = grad(f)(x)
        np.testing.assert_allclose(g, 2 * x, rtol=1e-12)

    @given(vec())
    @settings(max_examples=50, deadline=None)
    def test_reshape_preserves_gradient(self, x):
        g1 = grad(lambda t: ops.sum_(ops.square(t)))(x)
        g2 = grad(lambda t: ops.sum_(ops.square(ops.reshape(t, (-1, 1)))))(x)
        np.testing.assert_allclose(g1, g2, rtol=1e-12)

    @given(st.integers(2, 6), st.data())
    @settings(max_examples=30, deadline=None)
    def test_solve_identity_matrix_grad(self, n, data):
        from repro.autodiff.linalg import solve

        b = data.draw(arrays(np.float64, n, elements=SAFE))
        g = grad(lambda t: ops.sum_(ops.square(solve(np.eye(n), t))))(b)
        np.testing.assert_allclose(g, 2 * b, rtol=1e-10, atol=1e-12)

"""Trajectory properties the paper implies, asserted on recorded traces.

The paper's Laplace problem is smooth and convex enough that both exact-
gradient methods (DP and DAL) descend monotonically under Adam at the
published learning rate — §4.1 shows strictly decreasing cost curves
(Fig. 3b).  These tests run the tier-0 configs under telemetry and check
the recorded traces directly, which exercises the same records the
golden layer compares.
"""

import math

import pytest

from repro.obs.goldens import TIER0, run_tier0


@pytest.fixture(scope="module")
def laplace_dp_trace():
    return run_tier0("laplace_dp_tier0")


@pytest.fixture(scope="module")
def laplace_dal_trace():
    return run_tier0("laplace_dal_tier0")


class TestMonotoneDescent:
    def test_dp_laplace_cost_non_increasing(self, laplace_dp_trace):
        costs = [r.cost for r in laplace_dp_trace.iterations]
        assert all(b <= a for a, b in zip(costs, costs[1:])), costs

    def test_dal_laplace_cost_non_increasing(self, laplace_dal_trace):
        costs = [r.cost for r in laplace_dal_trace.iterations]
        assert all(b <= a for a, b in zip(costs, costs[1:])), costs

    def test_dp_laplace_makes_real_progress(self, laplace_dp_trace):
        costs = [r.cost for r in laplace_dp_trace.iterations]
        assert costs[-1] < 0.9 * costs[0]


class TestTraceWellFormedness:
    @pytest.mark.parametrize("fixture", [
        "laplace_dp_trace", "laplace_dal_trace",
    ])
    def test_every_value_finite(self, fixture, request):
        trace = request.getfixturevalue(fixture)
        for r in trace.iterations:
            assert math.isfinite(r.cost)
            assert math.isfinite(r.grad_norm) and r.grad_norm >= 0
            assert r.step_size > 0
            assert all(s >= 0 for s in r.phases.values())

    @pytest.mark.parametrize("fixture", [
        "laplace_dp_trace", "laplace_dal_trace",
    ])
    def test_iteration_indices_contiguous(self, fixture, request):
        trace = request.getfixturevalue(fixture)
        assert [r.iteration for r in trace.iterations] == list(
            range(len(trace.iterations))
        )

    def test_trace_length_matches_config(self, laplace_dp_trace):
        assert len(laplace_dp_trace.iterations) == (
            TIER0["laplace_dp_tier0"].iterations
        )


class TestPaperSchedule:
    """The lr schedule (÷10 at 50 % and 75 %) shows up in step sizes."""

    def test_step_sizes_non_increasing(self, laplace_dp_trace):
        steps = [r.step_size for r in laplace_dp_trace.iterations]
        assert all(b <= a for a, b in zip(steps, steps[1:]))

    def test_schedule_drops_by_factor_ten(self, laplace_dp_trace):
        steps = [r.step_size for r in laplace_dp_trace.iterations]
        distinct = sorted(set(steps), reverse=True)
        assert len(distinct) >= 2  # at least one drop within the budget
        for hi, lo in zip(distinct, distinct[1:]):
            assert lo == pytest.approx(hi / 10)


class TestSolverTelemetry:
    def test_dp_reports_lu_cache_reuse(self, laplace_dp_trace):
        # Factorise-once/solve-many is the DP speed story: with one
        # operator and 25 iterations the cache must be nearly all hits.
        caches = {r.cache: r for r in laplace_dp_trace.caches}
        assert "lu-cache" in caches
        rec = caches["lu-cache"]
        assert rec.misses >= 1
        assert rec.hits > rec.misses
        assert 0.9 < rec.hit_rate <= 1.0

    def test_phases_cover_grad_and_update(self, laplace_dp_trace):
        for r in laplace_dp_trace.iterations:
            assert set(r.phases) == {"grad", "update"}

"""Chunked stencil assembly must be invisible in the output.

``build_local_operators`` assembles the per-node RBF-FD saddle systems
in bounded-memory chunks; the 100k-node scaling path depends on that.
The contract is *bitwise* invariance: for any cloud, stencil degree and
chunking — including degenerate one-node chunks and a single monolithic
chunk — the CSR ``data``/``indices``/``indptr`` arrays must be
identical, because the per-node systems are independent and solved by
the same batched LAPACK call regardless of how they are grouped.
"""

from functools import lru_cache

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.square import SquareCloud
from repro.obs.metrics import get_registry
from repro.rbf.local import build_local_operators

#: Cloud variants: regular grid, low-discrepancy, and two jittered
#: scatters — enough geometric diversity for several chunk boundaries.
CLOUD_SPECS = (
    (9, None, 0),
    (8, "halton", 0),
    (8, "jitter", 1),
    (7, "jitter", 2),
)

OPERATORS = ("dx", "dy", "lap", "normal")


@lru_cache(maxsize=None)
def _cloud(spec_idx: int):
    nx, scatter, seed = CLOUD_SPECS[spec_idx]
    return SquareCloud(nx, scatter=scatter, seed=seed)


@lru_cache(maxsize=None)
def _reference(spec_idx: int, degree: int):
    """Monolithic build: one chunk covering the whole cloud."""
    cloud = _cloud(spec_idx)
    return build_local_operators(cloud, degree=degree, chunk_size=cloud.n)


def _assert_bitwise_equal(lops, ref):
    for name in OPERATORS:
        got = getattr(lops, name).tocsr()
        want = getattr(ref, name).tocsr()
        np.testing.assert_array_equal(got.data, want.data, err_msg=name)
        np.testing.assert_array_equal(
            got.indices, want.indices, err_msg=name
        )
        np.testing.assert_array_equal(got.indptr, want.indptr, err_msg=name)


class TestChunkingInvariance:
    @given(
        spec_idx=st.integers(0, len(CLOUD_SPECS) - 1),
        degree=st.integers(1, 2),
        chunk_size=st.integers(1, 120),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_chunking_is_bitwise_identical(
        self, spec_idx, degree, chunk_size
    ):
        lops = build_local_operators(
            _cloud(spec_idx), degree=degree, chunk_size=chunk_size
        )
        _assert_bitwise_equal(lops, _reference(spec_idx, degree))

    @given(spec_idx=st.integers(0, len(CLOUD_SPECS) - 1))
    @settings(max_examples=8, deadline=None)
    def test_auto_chunk_size_is_bitwise_identical(self, spec_idx):
        _assert_bitwise_equal(
            build_local_operators(_cloud(spec_idx)), _reference(spec_idx, 1)
        )

    def test_chunk_counter_reflects_chunking(self):
        cloud = _cloud(0)
        counter = get_registry().counter("rbf.assembly.chunks")
        before = counter.value
        build_local_operators(cloud, chunk_size=10)
        assert counter.value - before == int(np.ceil(cloud.n / 10))

    @given(chunk_size=st.integers(1, 81))
    @settings(max_examples=10, deadline=None)
    def test_derivatives_identical_through_application(self, chunk_size):
        # End-to-end: applying chunk-built operators to a field gives the
        # monolithic result bitwise, not just approximately.
        cloud = _cloud(0)
        lops = build_local_operators(cloud, chunk_size=chunk_size)
        f = np.sin(3 * cloud.x) * np.cos(2 * cloud.y)
        np.testing.assert_array_equal(
            lops.lap @ f, _reference(0, 1).lap @ f
        )

"""Property-based tests of RBF invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.square import SquareCloud
from repro.rbf.interpolate import fit_interpolant
from repro.rbf.kernels import polyharmonic
from repro.rbf.operators import build_nodal_operators

CLOUD = SquareCloud(9)
OPS = build_nodal_operators(CLOUD, polyharmonic(3), 1)

coeff = st.floats(-5.0, 5.0, allow_nan=False, allow_infinity=False, width=64)


class TestLinearReproduction:
    """Degree-1 augmentation ⇒ exact handling of ALL affine fields."""

    @given(coeff, coeff, coeff)
    @settings(max_examples=40, deadline=None)
    def test_interpolant_reproduces_affine(self, a, b, c):
        vals = a + b * CLOUD.x + c * CLOUD.y
        itp = fit_interpolant(CLOUD.points, vals)
        q = np.array([[0.21, 0.47], [0.73, 0.11], [0.5, 0.99]])
        np.testing.assert_allclose(
            itp(q), a + b * q[:, 0] + c * q[:, 1], atol=1e-7 * (1 + abs(a) + abs(b) + abs(c))
        )

    @given(coeff, coeff, coeff)
    @settings(max_examples=40, deadline=None)
    def test_derivative_matrices_exact_on_affine(self, a, b, c):
        vals = a + b * CLOUD.x + c * CLOUD.y
        scale = 1 + abs(a) + abs(b) + abs(c)
        np.testing.assert_allclose(OPS.dx @ vals, b, atol=1e-6 * scale)
        np.testing.assert_allclose(OPS.dy @ vals, c, atol=1e-6 * scale)
        np.testing.assert_allclose(OPS.lap @ vals, 0.0, atol=1e-5 * scale)


class TestLinearityOfOperators:
    @given(coeff, coeff)
    @settings(max_examples=40, deadline=None)
    def test_nodal_operator_linearity(self, a, b):
        f = np.sin(3 * CLOUD.x)
        g = np.cos(2 * CLOUD.y)
        lhs = OPS.lap @ (a * f + b * g)
        rhs = a * (OPS.lap @ f) + b * (OPS.lap @ g)
        np.testing.assert_allclose(lhs, rhs, atol=1e-8 * (1 + abs(a) + abs(b)))


class TestInterpolationIdentity:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_interpolation_is_exact_at_nodes(self, seed):
        rng = np.random.default_rng(seed)
        vals = rng.standard_normal(CLOUD.n)
        itp = fit_interpolant(CLOUD.points, vals)
        np.testing.assert_allclose(itp(CLOUD.points), vals, atol=1e-6)

"""Property-based tests of the vbatch transform (hypothesis).

The conformance suite pins every registered primitive at fixed shapes;
these properties fuzz the *shape space* of the structural rules — the
reductions (axis shifting, keepdims) and the views (slicing, reshape)
— against the looped reference, including the N = 0 and N = 1 edge
cases the axis arithmetic is most likely to get wrong.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import ops
from repro.autodiff.batching import vbatch
from repro.autodiff.tensor import tensor

SAFE = st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False, width=64)

item_shapes = st.lists(st.integers(1, 4), min_size=1, max_size=3).map(tuple)
batch_sizes = st.integers(0, 4)


@st.composite
def batched_array(draw, n=None, shape=None):
    """A ``(N, *item_shape)`` float64 array with data from a drawn seed."""
    if n is None:
        n = draw(batch_sizes)
    if shape is None:
        shape = draw(item_shapes)
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    return rng.uniform(-10.0, 10.0, (n,) + shape)


def loop_reference(fn, xs):
    """stack([fn(x) for x in xs]) with the N = 0 shape from a zero probe."""
    if xs.shape[0] == 0:
        probe = np.asarray(fn(tensor(np.zeros(xs.shape[1:]))).data)
        return np.zeros((0,) + probe.shape)
    return np.stack([np.asarray(fn(tensor(x)).data) for x in xs])


@st.composite
def reduction_case(draw):
    xs = draw(batched_array())
    ndim = xs.ndim - 1
    axis = draw(
        st.one_of(st.none(), st.integers(-ndim, ndim - 1))
    )
    keepdims = draw(st.booleans())
    return xs, axis, keepdims


class TestBatchedReductions:
    @given(reduction_case(), st.sampled_from(["sum_", "mean", "amax"]))
    @settings(max_examples=120, deadline=None)
    def test_forward_matches_loop(self, case, name):
        xs, axis, keepdims = case
        red = getattr(ops, name)
        fn = lambda t: red(t, axis=axis, keepdims=keepdims)
        got = np.asarray(vbatch(fn)(xs).data)
        want = loop_reference(fn, xs)
        assert got.shape == want.shape
        assert np.array_equal(got, want)

    @given(reduction_case(), st.sampled_from(["sum_", "mean"]))
    @settings(max_examples=80, deadline=None)
    def test_linear_reduction_vjp_matches_loop(self, case, name):
        xs, axis, keepdims = case
        red = getattr(ops, name)
        fn = lambda t: ops.sum_(ops.square(red(t, axis=axis, keepdims=keepdims)))

        bt = tensor(xs, requires_grad=True)
        vbatch(fn)(bt).backward(np.ones(xs.shape[0]))
        for i in range(xs.shape[0]):
            ti = tensor(xs[i], requires_grad=True)
            fn(ti).backward()
            assert np.array_equal(bt.grad[i], ti.grad), f"item {i}"

    @given(batched_array(), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_full_reduction_scalar_item(self, xs, keepdims):
        fn = lambda t: ops.sum_(t, keepdims=keepdims)
        got = np.asarray(vbatch(fn)(xs).data)
        assert np.array_equal(got, loop_reference(fn, xs))


@st.composite
def slicing_case(draw):
    xs = draw(batched_array())
    index = []
    for side in xs.shape[1:]:
        lo = draw(st.integers(0, side - 1))
        hi = draw(st.integers(lo + 1, side))
        step = draw(st.sampled_from([1, 2, -1]))
        if step == -1:
            index.append(slice(None, None, -1))
        else:
            index.append(slice(lo, hi, step))
    return xs, tuple(index)


class TestBatchedViews:
    @given(slicing_case())
    @settings(max_examples=100, deadline=None)
    def test_slicing_matches_loop(self, case):
        xs, index = case
        fn = lambda t: t[index]
        got = np.asarray(vbatch(fn)(xs).data)
        want = loop_reference(fn, xs)
        assert got.shape == want.shape
        assert np.array_equal(got, want)

    @given(slicing_case())
    @settings(max_examples=60, deadline=None)
    def test_slicing_vjp_matches_loop(self, case):
        xs, index = case
        fn = lambda t: ops.sum_(ops.square(t[index]))
        bt = tensor(xs, requires_grad=True)
        vbatch(fn)(bt).backward(np.ones(xs.shape[0]))
        for i in range(xs.shape[0]):
            ti = tensor(xs[i], requires_grad=True)
            fn(ti).backward()
            assert np.array_equal(bt.grad[i], ti.grad), f"item {i}"

    @given(batched_array(), st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_reshape_roundtrip_matches_loop(self, xs, flatten):
        shape = xs.shape[1:]
        target = (-1,) if flatten else shape[::-1]
        fn = lambda t: ops.reshape(t, target)
        got = np.asarray(vbatch(fn)(xs).data)
        want = loop_reference(fn, xs)
        assert got.shape == want.shape
        assert np.array_equal(got, want)

    @given(batched_array())
    @settings(max_examples=60, deadline=None)
    def test_transpose_matches_loop(self, xs):
        fn = ops.transpose
        got = np.asarray(vbatch(fn)(xs).data)
        assert np.array_equal(got, loop_reference(fn, xs))


class TestEdgeBatchSizes:
    """N = 0 and N = 1 must behave exactly like any other batch size."""

    @given(item_shapes, st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_singleton_batch_equals_item(self, shape, seed):
        x = np.random.default_rng(seed).uniform(-10, 10, shape)
        fn = lambda t: ops.mean(ops.square(t)) + ops.amax(t)
        batched = np.asarray(vbatch(fn)(x[None]).data)
        single = np.asarray(fn(tensor(x)).data)
        assert batched.shape == (1,)
        assert np.array_equal(batched[0], single)

    @given(item_shapes)
    @settings(max_examples=30, deadline=None)
    def test_empty_batch_shape(self, shape):
        xs = np.zeros((0,) + shape)
        fn = lambda t: ops.sum_(t, axis=0)
        out = np.asarray(vbatch(fn)(xs).data)
        assert out.shape == loop_reference(fn, xs).shape
        assert out.shape[0] == 0

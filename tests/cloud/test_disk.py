"""Tests for the disk/annulus cloud (geometric-flexibility extension)."""

import numpy as np
import pytest

from repro.cloud.disk import DiskCloud
from repro.rbf.solver import BoundaryCondition, LinearPDEProblem, solve_pde
from repro.rbf.assembly import LinearOperator2D


class TestDisk:
    def test_groups(self):
        c = DiskCloud(6)
        assert set(c.groups) == {"internal", "rim"}

    def test_rim_on_circle(self):
        c = DiskCloud(7, radius=2.0, center=(1.0, -1.0))
        rim = c.group_points("rim")
        r = np.linalg.norm(rim - np.array([1.0, -1.0]), axis=1)
        np.testing.assert_allclose(r, 2.0, atol=1e-12)

    def test_rim_normals_radial(self):
        c = DiskCloud(6)
        rim = c.group_points("rim")
        nrm = c.group_normals("rim")
        np.testing.assert_allclose(nrm, rim / np.linalg.norm(rim, axis=1)[:, None])

    def test_interior_inside(self):
        c = DiskCloud(8, radius=1.0)
        r = np.linalg.norm(c.points[c.internal], axis=1)
        assert r.max() < 1.0

    def test_no_duplicates(self):
        DiskCloud(8).validate()

    def test_min_rings(self):
        with pytest.raises(ValueError):
            DiskCloud(1)


class TestAnnulus:
    def test_hub_group_present(self):
        c = DiskCloud(6, inner_radius=0.3)
        assert "hub" in c.groups

    def test_hub_normals_point_inward(self):
        c = DiskCloud(6, inner_radius=0.4)
        hub = c.group_points("hub")
        nrm = c.group_normals("hub")
        # Outward normal of the domain on the inner circle points toward
        # the centre.
        np.testing.assert_allclose(
            nrm, -hub / np.linalg.norm(hub, axis=1)[:, None], atol=1e-12
        )

    def test_invalid_inner_radius(self):
        with pytest.raises(ValueError):
            DiskCloud(6, radius=1.0, inner_radius=1.5)


class TestSolveOnDisk:
    def test_poisson_manufactured(self):
        """Δ(1 − r²) = −4 with zero rim data — solved mesh-free on the disk."""
        c = DiskCloud(8)
        prob = LinearPDEProblem(
            operator=LinearOperator2D(lap=1.0),
            source=-4.0,
            bcs={"rim": BoundaryCondition("dirichlet", value=0.0)},
        )
        u = solve_pde(c, prob)
        exact = 1 - c.x**2 - c.y**2
        assert np.max(np.abs(u - exact)) < 0.02

    def test_annulus_harmonic(self):
        """u = log(r)/log(2) on the annulus r ∈ [1/2, 1] is harmonic."""
        c = DiskCloud(8, radius=1.0, inner_radius=0.5)

        def exact(p):
            r = np.linalg.norm(p, axis=1)
            return np.log(r / 0.5) / np.log(2.0)

        prob = LinearPDEProblem(
            operator=LinearOperator2D(lap=1.0),
            bcs={
                "rim": BoundaryCondition("dirichlet", value=exact),
                "hub": BoundaryCondition("dirichlet", value=exact),
            },
        )
        u = solve_pde(c, prob)
        r = np.linalg.norm(c.points, axis=1)
        assert np.max(np.abs(u - np.log(r / 0.5) / np.log(2.0))) < 0.02

"""Tests for low-discrepancy sequences."""

import numpy as np
import pytest

from repro.cloud.halton import halton_sequence, van_der_corput


class TestVanDerCorput:
    def test_first_values_base2(self):
        np.testing.assert_allclose(
            van_der_corput(4, 2), [0.5, 0.25, 0.75, 0.125]
        )

    def test_first_values_base3(self):
        np.testing.assert_allclose(
            van_der_corput(3, 3), [1 / 3, 2 / 3, 1 / 9]
        )

    def test_in_unit_interval(self):
        v = van_der_corput(200, 5)
        assert v.min() > 0 and v.max() < 1

    def test_start_offset(self):
        full = van_der_corput(10, 2)
        shifted = van_der_corput(8, 2, start=3)
        np.testing.assert_allclose(shifted, full[2:])

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            van_der_corput(-1, 2)
        with pytest.raises(ValueError):
            van_der_corput(5, 1)


class TestHalton:
    def test_shape(self):
        assert halton_sequence(50, 2).shape == (50, 2)

    def test_low_discrepancy_beats_uniform_tail(self):
        # Star-discrepancy proxy: max deviation of empirical CDF on a grid.
        n = 256
        h = halton_sequence(n, 2)
        rng = np.random.default_rng(0)
        u = rng.uniform(size=(n, 2))

        def disc(pts):
            worst = 0.0
            for a in np.linspace(0.1, 1.0, 10):
                for b in np.linspace(0.1, 1.0, 10):
                    frac = np.mean((pts[:, 0] < a) & (pts[:, 1] < b))
                    worst = max(worst, abs(frac - a * b))
            return worst

        assert disc(h) < disc(u)

    def test_dim_limit(self):
        with pytest.raises(ValueError):
            halton_sequence(5, 11)

    def test_points_distinct(self):
        h = halton_sequence(100, 2)
        assert len(np.unique(h.round(12), axis=0)) == 100

"""Tests for the unit-square cloud generator."""

import numpy as np
import pytest

from repro.cloud.base import BoundaryKind
from repro.cloud.square import SquareCloud


class TestRegularGrid:
    def test_total_count(self):
        c = SquareCloud(10)
        assert c.n == 100

    def test_rectangular(self):
        c = SquareCloud(8, 5)
        assert c.n == 40
        assert c.counts()["internal"] == 6 * 3

    def test_all_points_in_unit_square(self):
        c = SquareCloud(9)
        assert c.points.min() >= 0.0 and c.points.max() <= 1.0

    def test_corners_belong_to_sides(self):
        c = SquareCloud(7)
        left = c.group_points("left")
        assert {tuple(p) for p in left} >= {(0.0, 0.0), (0.0, 1.0)}
        top = c.group_points("top")
        assert all(0.0 < p[0] < 1.0 for p in top)

    def test_top_sorted_by_x(self):
        c = SquareCloud(12)
        tx = c.points[c.groups["top"], 0]
        assert np.all(np.diff(tx) > 0)

    def test_normals_outward(self):
        c = SquareCloud(6)
        np.testing.assert_allclose(c.group_normals("top"), [[0, 1]] * 4)
        np.testing.assert_allclose(c.group_normals("bottom"), [[0, -1]] * 4)
        np.testing.assert_allclose(c.group_normals("left"), [[-1, 0]] * 6)

    def test_no_duplicates(self):
        SquareCloud(11).validate()

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            SquareCloud(2)


class TestScattered:
    def test_halton_interior_count(self):
        c = SquareCloud(10, scatter="halton")
        assert c.counts()["internal"] == 64

    def test_halton_interior_strictly_inside(self):
        c = SquareCloud(10, scatter="halton")
        ip = c.points[c.internal]
        assert ip.min() > 0.0 and ip.max() < 1.0

    def test_jitter_reproducible(self):
        c1 = SquareCloud(8, scatter="jitter", seed=3)
        c2 = SquareCloud(8, scatter="jitter", seed=3)
        np.testing.assert_array_equal(c1.points, c2.points)

    def test_jitter_seed_changes_interior(self):
        c1 = SquareCloud(8, scatter="jitter", seed=0)
        c2 = SquareCloud(8, scatter="jitter", seed=1)
        assert not np.allclose(c1.points[c1.internal], c2.points[c2.internal])

    def test_boundary_unchanged_by_scatter(self):
        reg = SquareCloud(9)
        hal = SquareCloud(9, scatter="halton")
        np.testing.assert_allclose(
            reg.group_points("top"), hal.group_points("top")
        )

    def test_unknown_scatter_raises(self):
        with pytest.raises(ValueError, match="scatter"):
            SquareCloud(8, scatter="random-walk")


class TestKindOverride:
    def test_neumann_top(self):
        kinds = {
            "internal": BoundaryKind.INTERNAL,
            "bottom": BoundaryKind.DIRICHLET,
            "top": BoundaryKind.NEUMANN,
            "left": BoundaryKind.DIRICHLET,
            "right": BoundaryKind.DIRICHLET,
        }
        c = SquareCloud(8, kinds=kinds)
        assert c.counts()["neumann"] == 6

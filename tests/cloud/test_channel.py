"""Tests for the channel cloud (the GMSH substitute)."""

import numpy as np
import pytest

from repro.cloud.channel import ChannelCloud, ChannelGeometry


class TestGeometry:
    def test_defaults_match_paper(self):
        g = ChannelGeometry()
        assert g.lx == 1.5 and g.ly == 1.0

    def test_invalid_segment(self):
        with pytest.raises(ValueError):
            ChannelGeometry(seg_lo=0.9, seg_hi=0.5)
        with pytest.raises(ValueError):
            ChannelGeometry(seg_lo=0.5, seg_hi=2.0)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            ChannelGeometry(lx=-1.0)


class TestCloud:
    def test_groups_present(self):
        c = ChannelCloud(17, 9)
        assert set(c.groups) == {
            "internal", "inflow", "outflow", "wall_bottom", "wall_top",
            "blowing", "suction",
        }

    def test_inflow_owns_corners(self):
        c = ChannelCloud(17, 9)
        iy = c.points[c.groups["inflow"], 1]
        assert iy.min() == 0.0 and iy.max() == 1.0

    def test_blowing_segment_location(self):
        g = ChannelGeometry()
        c = ChannelCloud(21, 9, geometry=g)
        bx = c.points[c.groups["blowing"], 0]
        assert np.all((bx >= g.seg_lo) & (bx <= g.seg_hi))
        by = c.points[c.groups["blowing"], 1]
        np.testing.assert_allclose(by, 0.0)

    def test_suction_on_top(self):
        c = ChannelCloud(21, 9)
        sy = c.points[c.groups["suction"], 1]
        np.testing.assert_allclose(sy, 1.0)

    def test_inflow_outflow_sorted_by_y(self):
        c = ChannelCloud(15, 9)
        assert np.all(np.diff(c.points[c.groups["inflow"], 1]) > 0)
        assert np.all(np.diff(c.points[c.groups["outflow"], 1]) > 0)

    def test_grading_clusters_near_walls(self):
        graded = ChannelCloud(9, 21, grading=0.9)
        uniform = ChannelCloud(9, 21, grading=0.0)
        ys_g = np.unique(graded.points[graded.groups["inflow"], 1])
        ys_u = np.unique(uniform.points[uniform.groups["inflow"], 1])
        # First spacing near the wall must be smaller with grading.
        assert np.diff(ys_g)[0] < np.diff(ys_u)[0]

    def test_jitter_keeps_interior_inside(self):
        c = ChannelCloud(15, 9, jitter=1.0, seed=2)
        geo = ChannelGeometry()
        ip = c.points[c.internal]
        assert ip[:, 0].min() > 0 and ip[:, 0].max() < geo.lx
        assert ip[:, 1].min() > 0 and ip[:, 1].max() < geo.ly

    def test_jitter_reproducible(self):
        c1 = ChannelCloud(13, 7, jitter=0.5, seed=5)
        c2 = ChannelCloud(13, 7, jitter=0.5, seed=5)
        np.testing.assert_array_equal(c1.points, c2.points)

    def test_no_duplicates(self):
        ChannelCloud(17, 9, jitter=0.3).validate()

    def test_normals(self):
        c = ChannelCloud(15, 9)
        np.testing.assert_allclose(c.group_normals("inflow"), [[-1, 0]] * 9)
        np.testing.assert_allclose(c.group_normals("outflow"), [[1, 0]] * 9)
        np.testing.assert_allclose(
            c.group_normals("blowing"), [[0, -1]] * len(c.groups["blowing"])
        )

    def test_too_coarse_for_segment_raises(self):
        geo = ChannelGeometry(seg_lo=0.70, seg_hi=0.72)
        with pytest.raises(ValueError, match="segment"):
            ChannelCloud(6, 6, geometry=geo)

    def test_min_size(self):
        with pytest.raises(ValueError):
            ChannelCloud(3, 9)

"""Tests for the Cloud container and its ordering invariants."""

import numpy as np
import pytest

from repro.cloud.base import BoundaryKind, Cloud, KIND_ORDER


def make_cloud(kinds=None):
    """A tiny hand-built cloud: 2 interior, 2 dirichlet, 1 neumann."""
    pts = np.array(
        [[0.5, 0.5], [0.0, 0.0], [0.25, 0.5], [1.0, 0.0], [0.5, 1.0]]
    )
    groups = np.array(["internal", "bottom", "internal", "bottom", "top"], dtype=object)
    normals = np.array(
        [[np.nan, np.nan], [0, -1], [np.nan, np.nan], [0, -1], [0, 1]], dtype=float
    )
    kinds = kinds or {
        "internal": BoundaryKind.INTERNAL,
        "bottom": BoundaryKind.DIRICHLET,
        "top": BoundaryKind.NEUMANN,
    }
    return Cloud(
        points=pts,
        group_of=groups,
        kinds=kinds,
        normals=normals,
        coords=np.array([np.nan, 0.0, np.nan, 1.0, 0.5]),
    )


class TestOrdering:
    def test_kind_blocks_canonical(self):
        c = make_cloud()
        ranks = [KIND_ORDER.index(c.kinds[g]) for g in c.group_of]
        assert ranks == sorted(ranks)

    def test_internal_block_first(self):
        c = make_cloud()
        np.testing.assert_array_equal(c.internal, [0, 1])

    def test_counts(self):
        c = make_cloud()
        assert c.counts() == {
            "internal": 2,
            "dirichlet": 2,
            "neumann": 1,
            "robin": 0,
        }

    def test_boundary_complement_of_internal(self):
        c = make_cloud()
        assert set(c.boundary) | set(c.internal) == set(range(c.n))
        assert not set(c.boundary) & set(c.internal)

    def test_within_group_order_preserved(self):
        # Bottom nodes were given in x-order 0.0 then 1.0; stable sort
        # keeps that relative order.
        c = make_cloud()
        bx = c.points[c.groups["bottom"], 0]
        assert bx.tolist() == [0.0, 1.0]


class TestValidation:
    def test_missing_kind_raises(self):
        with pytest.raises(ValueError, match="BoundaryKind"):
            make_cloud(kinds={"internal": BoundaryKind.INTERNAL})

    def test_bad_points_shape(self):
        with pytest.raises(ValueError, match=r"\(N, 2\)"):
            Cloud(
                points=np.zeros((3, 3)),
                group_of=np.array(["a"] * 3, dtype=object),
                kinds={"a": BoundaryKind.INTERNAL},
                normals=np.zeros((3, 2)),
            )

    def test_zero_normal_raises(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        with pytest.raises(ValueError, match="zero-length"):
            Cloud(
                points=pts,
                group_of=np.array(["b", "b"], dtype=object),
                kinds={"b": BoundaryKind.DIRICHLET},
                normals=np.zeros((2, 2)),
            )

    def test_normals_are_normalised(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        c = Cloud(
            points=pts,
            group_of=np.array(["b", "b"], dtype=object),
            kinds={"b": BoundaryKind.DIRICHLET},
            normals=np.array([[0.0, -5.0], [0.0, -2.0]]),
        )
        np.testing.assert_allclose(
            np.linalg.norm(c.normals, axis=1), [1.0, 1.0]
        )

    def test_validate_detects_duplicates(self):
        pts = np.array([[0.5, 0.5], [0.5, 0.5]])
        c = Cloud(
            points=pts,
            group_of=np.array(["internal", "internal"], dtype=object),
            kinds={"internal": BoundaryKind.INTERNAL},
            normals=np.full((2, 2), np.nan),
        )
        with pytest.raises(ValueError, match="duplicate"):
            c.validate()


class TestAccessors:
    def test_group_points_and_normals(self):
        c = make_cloud()
        assert c.group_points("bottom").shape == (2, 2)
        np.testing.assert_allclose(c.group_normals("top"), [[0.0, 1.0]])

    def test_group_coords_sorted(self):
        c = make_cloud()
        coords = c.group_coords("bottom")
        assert coords.tolist() == [0.0, 1.0]

    def test_group_coords_missing_raises(self):
        c = make_cloud()
        with pytest.raises(ValueError, match="arclength"):
            c.group_coords("internal")

    def test_xy_properties(self):
        c = make_cloud()
        np.testing.assert_array_equal(c.x, c.points[:, 0])
        np.testing.assert_array_equal(c.y, c.points[:, 1])

    def test_with_kinds_retags_and_reorders(self):
        c = make_cloud()
        c2 = c.with_kinds({"top": BoundaryKind.DIRICHLET, "bottom": BoundaryKind.NEUMANN})
        assert c2.counts()["neumann"] == 2
        assert c2.counts()["dirichlet"] == 1
        # Original unchanged.
        assert c.counts()["neumann"] == 1

"""Tests for kd-tree neighbour queries and cloud-quality metrics."""

import gc
import weakref

import numpy as np
import pytest

from repro.cloud import neighbors
from repro.cloud.neighbors import (
    cache_stats,
    clear_tree_cache,
    fill_distance,
    kdtree,
    min_spacing,
    nearest_neighbors,
)
from repro.cloud.square import SquareCloud


class TestNearestNeighbors:
    def test_self_is_first_neighbor(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        idx, dists = nearest_neighbors(pts, k=2)
        np.testing.assert_array_equal(idx[:, 0], [0, 1, 2])
        np.testing.assert_allclose(dists[:, 0], 0.0)

    def test_k1_shape(self):
        pts = np.random.default_rng(0).uniform(size=(10, 2))
        idx, dists = nearest_neighbors(pts, k=1)
        assert idx.shape == (10, 1) and dists.shape == (10, 1)

    def test_queries_argument(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        idx, dists = nearest_neighbors(pts, k=1, queries=np.array([[0.9, 0.0]]))
        assert idx[0, 0] == 1

    def test_invalid_k(self):
        pts = np.zeros((3, 2))
        with pytest.raises(ValueError):
            nearest_neighbors(pts, k=0)
        with pytest.raises(ValueError):
            nearest_neighbors(pts, k=4)


class TestMetrics:
    def test_min_spacing_regular_grid(self):
        c = SquareCloud(11)
        assert abs(min_spacing(c.points) - 0.1) < 1e-12

    def test_fill_distance_regular_grid(self):
        c = SquareCloud(11)
        # Largest hole on a regular grid ≈ half-diagonal of a cell.
        fd = fill_distance(c.points, resolution=41)
        assert fd <= 0.1 * np.sqrt(2) / 2 + 1e-9

    def test_scattered_cloud_worse_fill(self):
        reg = SquareCloud(12)
        jit = SquareCloud(12, scatter="jitter", seed=0)
        assert fill_distance(jit.points) >= fill_distance(reg.points) - 1e-12


class TestTreeCache:
    def setup_method(self):
        clear_tree_cache()

    def teardown_method(self):
        clear_tree_cache()

    def test_same_object_hits_identity_alias(self):
        pts = np.random.default_rng(1).uniform(size=(30, 2))
        t1 = kdtree(pts)
        t2 = kdtree(pts)
        assert t1 is t2
        assert cache_stats["misses"] == 1
        assert cache_stats["hits"] == 1

    def test_equal_content_shares_tree_across_objects(self):
        pts = np.random.default_rng(2).uniform(size=(25, 2))
        t1 = kdtree(pts)
        t2 = kdtree(pts.copy())  # distinct object, same coordinates
        assert t1 is t2
        assert cache_stats["hits"] == 1

    def test_changed_content_rebuilds(self):
        pts = np.random.default_rng(3).uniform(size=(20, 2))
        t1 = kdtree(pts)
        moved = pts + 0.5
        t2 = kdtree(moved)
        assert t1 is not t2
        assert cache_stats["misses"] == 2
        # and the moved tree really reflects the new coordinates
        d, _ = t2.query(moved[0], k=1)
        assert d == 0.0

    def test_queries_use_cache(self):
        pts = SquareCloud(9).points
        nearest_neighbors(pts, k=5)
        nearest_neighbors(pts, k=7)
        fill_distance(pts)
        assert cache_stats["misses"] == 1
        assert cache_stats["hits"] >= 2

    def test_clear_resets(self):
        pts = np.random.default_rng(4).uniform(size=(10, 2))
        kdtree(pts)
        clear_tree_cache()
        assert cache_stats == {"hits": 0, "misses": 0}
        kdtree(pts)
        assert cache_stats["misses"] == 1


class TestAliasLifetime:
    """The identity-alias map must never keep a point cloud alive.

    Regression: ``_ID_ALIAS`` used to store a strong reference to each
    keyed array, so a cloud whose tree had long been LRU-evicted stayed
    resident until an arbitrary ``4 * capacity`` purge — for 100k-node
    clouds that is ~1.6 MB apiece of dead weight.
    """

    def setup_method(self):
        clear_tree_cache()

    def teardown_method(self):
        clear_tree_cache()

    def test_alias_does_not_pin_evicted_array(self):
        rng = np.random.default_rng(5)
        pts = rng.uniform(size=(50, 2))
        kdtree(pts)
        ref = weakref.ref(pts)
        # Overflow the LRU so pts' tree — which itself references the
        # coordinate array — is evicted.  After that, nothing but the
        # (weak) alias may still point at the cloud.
        keep = [rng.uniform(size=(13, 2)) for _ in range(neighbors._CACHE_CAPACITY)]
        for arr in keep:
            kdtree(arr)
        del pts
        gc.collect()
        assert ref() is None, "alias map kept the cloud alive after tree eviction"

    def test_dead_alias_entry_removed_by_callback(self):
        pts = np.random.default_rng(8).uniform(size=(20, 2))
        kdtree(pts)
        assert len(neighbors._ID_ALIAS) == 1
        # Dropping the tree entry first leaves only the weak alias; the
        # weakref callback must then clean up the mapping itself.
        neighbors._TREE_CACHE.clear()
        del pts
        gc.collect()
        assert len(neighbors._ID_ALIAS) == 0

    def test_alias_evicted_with_tree_entry(self):
        rng = np.random.default_rng(6)
        first = rng.uniform(size=(12, 2))
        kdtree(first)
        first_key = next(iter(neighbors._TREE_CACHE))
        # Overflow the LRU so `first`'s tree entry is evicted.
        keep = []
        for _ in range(neighbors._CACHE_CAPACITY):
            arr = rng.uniform(size=(12, 2))
            keep.append(arr)
            kdtree(arr)
        assert first_key not in neighbors._TREE_CACHE
        assert all(k != first_key for k, _ in neighbors._ID_ALIAS.values())

    def test_live_alias_still_fast_path(self):
        pts = np.random.default_rng(7).uniform(size=(40, 2))
        t1 = kdtree(pts)
        gc.collect()  # a collection must not invalidate live aliases
        t2 = kdtree(pts)
        assert t1 is t2
        assert cache_stats["hits"] == 1

"""Tests for the PINN method and the two-step omega line search.

Training budgets here are tiny (hundreds of epochs): the tests check
*mechanisms* — losses decrease, residuals respond to omega, the line
search selects by retrained cost — not paper-level accuracy, which the
benchmark suite covers at larger budgets.
"""

import numpy as np
import pytest

from repro.control.pinn import (
    LaplacePINN,
    LineSearchResult,
    NavierStokesPINN,
    PINNTrainConfig,
    omega_line_search,
)
from repro.pde.navier_stokes import NSConfig

FAST = PINNTrainConfig(epochs=150, lr=2e-3, n_interior=80, n_boundary=12, seed=0)


@pytest.fixture(scope="module")
def lap_pinn(laplace_problem):
    return LaplacePINN(
        laplace_problem, state_hidden=(16, 16), control_hidden=(8,), config=FAST
    )


class TestLaplacePINNComponents:
    def test_init_params_structure(self, lap_pinn):
        p = lap_pinn.init_params()
        assert set(p) == {"u", "c"}
        assert p["u"][0]["W"].shape == (2, 16)
        assert p["c"][0]["W"].shape == (1, 8)

    def test_residual_loss_nonnegative(self, lap_pinn):
        p = lap_pinn.init_params()
        assert float(lap_pinn.residual_loss(p["u"]).data) >= 0.0

    def test_loss_composition(self, lap_pinn):
        p = lap_pinn.init_params()
        l0 = float(lap_pinn.loss(p, omega=0.0).data)
        l1 = float(lap_pinn.loss(p, omega=1.0).data)
        j = float(lap_pinn.cost_objective(p["u"]).data)
        assert l1 == pytest.approx(l0 + j, rel=1e-10)

    def test_training_reduces_loss(self, lap_pinn):
        run = lap_pinn.train_pair(omega=0.1)
        assert run.loss_history[-1] < run.loss_history[0]

    def test_histories_recorded(self, lap_pinn):
        run = lap_pinn.train_pair(omega=0.1)
        assert len(run.loss_history) == FAST.epochs
        assert len(run.cost_history) == FAST.epochs
        assert len(run.residual_history) == FAST.epochs

    def test_joint_training_mode(self, laplace_problem):
        cfg = PINNTrainConfig(
            epochs=60, lr=2e-3, n_interior=50, n_boundary=10, alternating=False
        )
        pinn = LaplacePINN(
            laplace_problem, state_hidden=(8,), control_hidden=(8,), config=cfg
        )
        run = pinn.train_pair(omega=0.1)
        assert run.loss_history[-1] < run.loss_history[0]

    def test_retrain_state_reduces_forward_loss(self, lap_pinn):
        run = lap_pinn.train_pair(omega=0.1)
        _, hist = lap_pinn.retrain_state(run.params_c)
        assert hist[-1] < hist[0]

    def test_control_values_shape(self, lap_pinn, laplace_problem):
        run = lap_pinn.train_pair(omega=0.1)
        c = lap_pinn.control_values(run.params_c)
        assert c.shape == (laplace_problem.n_control,)

    def test_evaluate_cost_positive(self, lap_pinn):
        p = lap_pinn.init_params()
        assert lap_pinn.evaluate_cost(p["u"]) > 0.0

    def test_state_values(self, lap_pinn):
        p = lap_pinn.init_params()
        pts = np.random.default_rng(0).uniform(0, 1, (5, 2))
        assert lap_pinn.state_values(p["u"], pts).shape == (5,)

    def test_large_omega_prioritises_cost(self, laplace_problem):
        """Mechanism behind Fig. 3c–e: larger ω trades PDE fit for cost."""
        cfg = PINNTrainConfig(epochs=400, lr=2e-3, n_interior=80, n_boundary=12)
        pinn = LaplacePINN(
            laplace_problem, state_hidden=(16, 16), control_hidden=(8,), config=cfg
        )
        run_small = pinn.train_pair(omega=1e-3)
        run_big = pinn.train_pair(omega=1e2)
        assert run_big.cost_history[-1] < run_small.cost_history[-1]


class TestLineSearch:
    def test_structure_and_selection(self, lap_pinn):
        omegas = [1e-2, 1.0]
        ls = omega_line_search(lap_pinn, omegas)
        assert isinstance(ls, LineSearchResult)
        assert ls.best_omega in omegas
        assert len(ls.step1) == 2
        assert len(ls.step2_costs) == 2
        assert ls.best_cost == pytest.approx(min(ls.step2_costs))
        assert ls.omegas == [1e-2, 1.0]
        assert ls.failures == []

    def test_empty_omegas_raises(self, lap_pinn):
        with pytest.raises(ValueError):
            omega_line_search(lap_pinn, [])


# Module-level so worker processes resolve it under any start method.
class _FailingPINN(LaplacePINN):
    """Raises during step-1 training for one poisoned ω."""

    poisoned_omega = 1.0

    def train_pair(self, omega, config=None, seed=None, recorder=None):
        if omega == self.poisoned_omega:
            raise RuntimeError(f"poisoned omega {omega}")
        return super().train_pair(omega, config, seed=seed, recorder=recorder)


class _AllFailPINN(LaplacePINN):
    def train_pair(self, omega, config=None, seed=None, recorder=None):
        raise RuntimeError(f"poisoned omega {omega}")


class TestLineSearchParallel:
    """Serial/parallel equivalence of the ω line search (the determinism
    bugfix: per-ω seeds derived from (cfg.seed, ω), never shared RNG)."""

    CFG = PINNTrainConfig(epochs=40, lr=2e-3, n_interior=60, n_boundary=10, seed=0)
    OMEGAS = [1e-2, 1e-1, 1.0]

    def _pinn(self, laplace_problem, cls=LaplacePINN):
        return cls(
            laplace_problem, state_hidden=(8,), control_hidden=(6,),
            config=self.CFG,
        )

    @staticmethod
    def _flat(params):
        out = []
        for layer in params:
            out.append(layer["W"].ravel())
            out.append(layer["b"].ravel())
        return np.concatenate(out)

    def test_parallel_bitwise_identical_to_serial(self, laplace_problem):
        serial = omega_line_search(
            self._pinn(laplace_problem), self.OMEGAS, jobs=1
        )
        pooled = omega_line_search(
            self._pinn(laplace_problem), self.OMEGAS, jobs=2
        )
        assert pooled.best_omega == serial.best_omega
        assert pooled.best_cost == serial.best_cost
        assert pooled.step2_costs == serial.step2_costs
        assert np.array_equal(
            self._flat(pooled.params_u_retrained),
            self._flat(serial.params_u_retrained),
        )
        assert np.array_equal(
            self._flat(pooled.params_c), self._flat(serial.params_c)
        )
        for a, b in zip(serial.step1, pooled.step1):
            assert a.loss_history == b.loss_history
            assert a.cost_history == b.cost_history

    def test_omega_order_permutation_invariant(self, laplace_problem):
        """Regression: with sequential shared-RNG training, each ω's result
        depended on its position in the list.  Derived per-ω seeds make the
        per-candidate outcome a function of ω alone."""
        fwd = omega_line_search(self._pinn(laplace_problem), self.OMEGAS, jobs=1)
        rev = omega_line_search(
            self._pinn(laplace_problem), self.OMEGAS[::-1], jobs=2
        )
        assert dict(zip(fwd.omegas, fwd.step2_costs)) == dict(
            zip(rev.omegas, rev.step2_costs)
        )
        assert rev.best_omega == fwd.best_omega
        assert rev.best_cost == fwd.best_cost

    def test_recorder_stream_matches_serial(self, laplace_problem):
        from repro.obs import TolerancePolicy, TraceRecorder, diff_traces

        rec_s, rec_p = TraceRecorder(), TraceRecorder()
        omega_line_search(
            self._pinn(laplace_problem), self.OMEGAS, recorder=rec_s, jobs=1
        )
        omega_line_search(
            self._pinn(laplace_problem), self.OMEGAS, recorder=rec_p, jobs=2
        )
        assert len(rec_s.records) == len(rec_p.records)
        assert diff_traces(rec_s, rec_p, TolerancePolicy()) == []

    def test_failed_candidate_dropped_not_fatal(self, laplace_problem):
        ls = omega_line_search(self._pinn(laplace_problem, _FailingPINN),
                               self.OMEGAS, jobs=2)
        assert ls.omegas == [1e-2, 1e-1]
        assert len(ls.step1) == len(ls.step2_costs) == 2
        (failure,) = ls.failures
        assert failure.key == "omega=1"
        assert failure.error["type"] == "RuntimeError"
        assert ls.best_omega in ls.omegas

    def test_all_candidates_failing_raises(self, laplace_problem):
        from repro.parallel import TaskError

        pinn = self._pinn(laplace_problem, _AllFailPINN)
        with pytest.raises(TaskError, match="omega"):
            omega_line_search(pinn, [1e-2, 1.0], jobs=2)



class TestLineSearchBatched:
    """vbatch'd ω line search vs the serial loop, plus the N_ω == 1
    regression: every path (serial, batched, parallel, degenerate
    single-candidate) derives the per-ω seed from ``(cfg.seed, ω)``, so
    one candidate's result is bitwise the same everywhere it appears."""

    CFG = PINNTrainConfig(epochs=40, lr=2e-3, n_interior=60, n_boundary=10, seed=0)
    OMEGAS = [1e-2, 1e-1, 1.0]

    def _pinn(self, laplace_problem):
        return LaplacePINN(
            laplace_problem, state_hidden=(8,), control_hidden=(6,),
            config=self.CFG,
        )

    @staticmethod
    def _flat(params):
        out = []
        for layer in params:
            out.append(layer["W"].ravel())
            out.append(layer["b"].ravel())
        return np.concatenate(out)

    def _assert_same(self, a: LineSearchResult, b: LineSearchResult):
        assert b.best_omega == a.best_omega
        assert b.best_cost == a.best_cost
        assert b.step2_costs == a.step2_costs
        assert np.array_equal(
            self._flat(b.params_u_retrained), self._flat(a.params_u_retrained)
        )
        assert np.array_equal(self._flat(b.params_c), self._flat(a.params_c))
        for ra, rb in zip(a.step1, b.step1):
            assert rb.loss_history == ra.loss_history
            assert rb.cost_history == ra.cost_history
            assert rb.residual_history == ra.residual_history
            assert np.array_equal(
                self._flat(rb.params_u), self._flat(ra.params_u)
            )
            assert np.array_equal(
                self._flat(rb.params_c), self._flat(ra.params_c)
            )

    def test_batched_bitwise_identical_to_serial(self, laplace_problem):
        serial = omega_line_search(self._pinn(laplace_problem), self.OMEGAS)
        batched = omega_line_search(
            self._pinn(laplace_problem), self.OMEGAS, batch=True
        )
        self._assert_same(serial, batched)

    def test_batch_composes_with_jobs(self, laplace_problem):
        serial = omega_line_search(self._pinn(laplace_problem), self.OMEGAS)
        two_level = omega_line_search(
            self._pinn(laplace_problem), self.OMEGAS, batch=True, jobs=2
        )
        self._assert_same(serial, two_level)

    def test_single_candidate_bitwise_across_all_paths(self, laplace_problem):
        """Regression: the degenerate N_ω == 1 run must reuse the same
        derived ``(cfg.seed, ω)`` key as any multi-candidate run that
        includes the same ω — serial, batched, and parallel alike."""
        omega = self.OMEGAS[1]
        solo = omega_line_search(self._pinn(laplace_problem), [omega])
        solo_batch = omega_line_search(
            self._pinn(laplace_problem), [omega], batch=True
        )
        solo_jobs = omega_line_search(
            self._pinn(laplace_problem), [omega], jobs=2
        )
        self._assert_same(solo, solo_batch)
        self._assert_same(solo, solo_jobs)

        multi = omega_line_search(
            self._pinn(laplace_problem), self.OMEGAS, batch=True
        )
        i = multi.omegas.index(omega)
        run_multi, run_solo = multi.step1[i], solo.step1[0]
        assert run_multi.loss_history == run_solo.loss_history
        assert multi.step2_costs[i] == solo.step2_costs[0]
        assert np.array_equal(
            self._flat(run_multi.params_c), self._flat(run_solo.params_c)
        )

    def test_batched_recorder_gets_verdict_meta(self, laplace_problem):
        from repro.obs import TraceRecorder

        rec = TraceRecorder()
        ls = omega_line_search(
            self._pinn(laplace_problem), self.OMEGAS, recorder=rec, batch=True
        )
        assert rec.meta["best_omega"] == ls.best_omega
        assert rec.meta["step2_costs"] == ls.step2_costs


class TestNavierStokesPINN:
    @pytest.fixture(scope="class")
    def ns_pinn(self, channel_problem):
        cfg = PINNTrainConfig(
            epochs=120, lr=2e-3, n_interior=80, n_boundary=12, seed=0
        )
        return NavierStokesPINN(
            channel_problem,
            ns_config=NSConfig(reynolds=100.0, refinements=5, pseudo_dt=0.5),
            state_hidden=(16, 16),
            control_hidden=(8,),
            config=cfg,
        )

    def test_residual_includes_all_equations(self, ns_pinn):
        p = ns_pinn.init_params()
        assert float(ns_pinn.residual_loss(p["u"]).data) > 0.0

    def test_training_reduces_loss(self, ns_pinn):
        run = ns_pinn.train_pair(omega=1.0)
        assert run.loss_history[-1] < run.loss_history[0]

    def test_control_values_shape(self, ns_pinn, channel_problem):
        run = ns_pinn.train_pair(omega=1.0)
        assert ns_pinn.control_values(run.params_c).shape == (
            channel_problem.n_control,
        )

    def test_evaluate_cost_physical_runs_reference_solver(
        self, ns_pinn, channel_problem
    ):
        run = ns_pinn.train_pair(omega=1.0)
        j_phys = ns_pinn.evaluate_cost_physical(run.params_c)
        assert np.isfinite(j_phys) and j_phys >= 0.0

    def test_retrain_state(self, ns_pinn):
        run = ns_pinn.train_pair(omega=1.0)
        pu, hist = ns_pinn.retrain_state(run.params_c)
        assert hist[-1] < hist[0]
        assert np.isfinite(ns_pinn.evaluate_cost(pu))

    def test_blowing_data_nonzero_on_segment(self, ns_pinn, channel_problem):
        geo = channel_problem.geometry
        xb = ns_pinn.x_bot[:, 0]
        on = (xb > geo.seg_lo) & (xb < geo.seg_hi)
        assert np.all(ns_pinn.v_bot_data[on] > 0)
        assert np.all(ns_pinn.v_bot_data[~on] == 0)

"""Tests for the PINN method and the two-step omega line search.

Training budgets here are tiny (hundreds of epochs): the tests check
*mechanisms* — losses decrease, residuals respond to omega, the line
search selects by retrained cost — not paper-level accuracy, which the
benchmark suite covers at larger budgets.
"""

import numpy as np
import pytest

from repro.control.pinn import (
    LaplacePINN,
    LineSearchResult,
    NavierStokesPINN,
    PINNTrainConfig,
    omega_line_search,
)
from repro.pde.navier_stokes import NSConfig

FAST = PINNTrainConfig(epochs=150, lr=2e-3, n_interior=80, n_boundary=12, seed=0)


@pytest.fixture(scope="module")
def lap_pinn(laplace_problem):
    return LaplacePINN(
        laplace_problem, state_hidden=(16, 16), control_hidden=(8,), config=FAST
    )


class TestLaplacePINNComponents:
    def test_init_params_structure(self, lap_pinn):
        p = lap_pinn.init_params()
        assert set(p) == {"u", "c"}
        assert p["u"][0]["W"].shape == (2, 16)
        assert p["c"][0]["W"].shape == (1, 8)

    def test_residual_loss_nonnegative(self, lap_pinn):
        p = lap_pinn.init_params()
        assert float(lap_pinn.residual_loss(p["u"]).data) >= 0.0

    def test_loss_composition(self, lap_pinn):
        p = lap_pinn.init_params()
        l0 = float(lap_pinn.loss(p, omega=0.0).data)
        l1 = float(lap_pinn.loss(p, omega=1.0).data)
        j = float(lap_pinn.cost_objective(p["u"]).data)
        assert l1 == pytest.approx(l0 + j, rel=1e-10)

    def test_training_reduces_loss(self, lap_pinn):
        run = lap_pinn.train_pair(omega=0.1)
        assert run.loss_history[-1] < run.loss_history[0]

    def test_histories_recorded(self, lap_pinn):
        run = lap_pinn.train_pair(omega=0.1)
        assert len(run.loss_history) == FAST.epochs
        assert len(run.cost_history) == FAST.epochs
        assert len(run.residual_history) == FAST.epochs

    def test_joint_training_mode(self, laplace_problem):
        cfg = PINNTrainConfig(
            epochs=60, lr=2e-3, n_interior=50, n_boundary=10, alternating=False
        )
        pinn = LaplacePINN(
            laplace_problem, state_hidden=(8,), control_hidden=(8,), config=cfg
        )
        run = pinn.train_pair(omega=0.1)
        assert run.loss_history[-1] < run.loss_history[0]

    def test_retrain_state_reduces_forward_loss(self, lap_pinn):
        run = lap_pinn.train_pair(omega=0.1)
        _, hist = lap_pinn.retrain_state(run.params_c)
        assert hist[-1] < hist[0]

    def test_control_values_shape(self, lap_pinn, laplace_problem):
        run = lap_pinn.train_pair(omega=0.1)
        c = lap_pinn.control_values(run.params_c)
        assert c.shape == (laplace_problem.n_control,)

    def test_evaluate_cost_positive(self, lap_pinn):
        p = lap_pinn.init_params()
        assert lap_pinn.evaluate_cost(p["u"]) > 0.0

    def test_state_values(self, lap_pinn):
        p = lap_pinn.init_params()
        pts = np.random.default_rng(0).uniform(0, 1, (5, 2))
        assert lap_pinn.state_values(p["u"], pts).shape == (5,)

    def test_large_omega_prioritises_cost(self, laplace_problem):
        """Mechanism behind Fig. 3c–e: larger ω trades PDE fit for cost."""
        cfg = PINNTrainConfig(epochs=400, lr=2e-3, n_interior=80, n_boundary=12)
        pinn = LaplacePINN(
            laplace_problem, state_hidden=(16, 16), control_hidden=(8,), config=cfg
        )
        run_small = pinn.train_pair(omega=1e-3)
        run_big = pinn.train_pair(omega=1e2)
        assert run_big.cost_history[-1] < run_small.cost_history[-1]


class TestLineSearch:
    def test_structure_and_selection(self, lap_pinn):
        omegas = [1e-2, 1.0]
        ls = omega_line_search(lap_pinn, omegas)
        assert isinstance(ls, LineSearchResult)
        assert ls.best_omega in omegas
        assert len(ls.step1) == 2
        assert len(ls.step2_costs) == 2
        assert ls.best_cost == pytest.approx(min(ls.step2_costs))

    def test_empty_omegas_raises(self, lap_pinn):
        with pytest.raises(ValueError):
            omega_line_search(lap_pinn, [])


class TestNavierStokesPINN:
    @pytest.fixture(scope="class")
    def ns_pinn(self, channel_problem):
        cfg = PINNTrainConfig(
            epochs=120, lr=2e-3, n_interior=80, n_boundary=12, seed=0
        )
        return NavierStokesPINN(
            channel_problem,
            ns_config=NSConfig(reynolds=100.0, refinements=5, pseudo_dt=0.5),
            state_hidden=(16, 16),
            control_hidden=(8,),
            config=cfg,
        )

    def test_residual_includes_all_equations(self, ns_pinn):
        p = ns_pinn.init_params()
        assert float(ns_pinn.residual_loss(p["u"]).data) > 0.0

    def test_training_reduces_loss(self, ns_pinn):
        run = ns_pinn.train_pair(omega=1.0)
        assert run.loss_history[-1] < run.loss_history[0]

    def test_control_values_shape(self, ns_pinn, channel_problem):
        run = ns_pinn.train_pair(omega=1.0)
        assert ns_pinn.control_values(run.params_c).shape == (
            channel_problem.n_control,
        )

    def test_evaluate_cost_physical_runs_reference_solver(
        self, ns_pinn, channel_problem
    ):
        run = ns_pinn.train_pair(omega=1.0)
        j_phys = ns_pinn.evaluate_cost_physical(run.params_c)
        assert np.isfinite(j_phys) and j_phys >= 0.0

    def test_retrain_state(self, ns_pinn):
        run = ns_pinn.train_pair(omega=1.0)
        pu, hist = ns_pinn.retrain_state(run.params_c)
        assert hist[-1] < hist[0]
        assert np.isfinite(ns_pinn.evaluate_cost(pu))

    def test_blowing_data_nonzero_on_segment(self, ns_pinn, channel_problem):
        geo = channel_problem.geometry
        xb = ns_pinn.x_bot[:, 0]
        on = (xb > geo.seg_lo) & (xb < geo.seg_hi)
        assert np.all(ns_pinn.v_bot_data[on] > 0)
        assert np.all(ns_pinn.v_bot_data[~on] == 0)

"""Tests for the reduced-Hessian Gauss–Newton extension."""

import numpy as np
import pytest

from repro.control.dp import LaplaceDP
from repro.control.loop import optimize
from repro.control.newton import LaplaceGaussNewton


@pytest.fixture(scope="module")
def gn(laplace_problem):
    return LaplaceGaussNewton(laplace_problem)


class TestQuadraticStructure:
    def test_gradient_matches_dp(self, gn, laplace_problem):
        """The assembled quadratic-model gradient IS the DP gradient."""
        dp = LaplaceDP(laplace_problem)
        rng = np.random.default_rng(0)
        for _ in range(3):
            c = rng.standard_normal(laplace_problem.n_control)
            _, g_dp = dp.value_and_grad(c)
            np.testing.assert_allclose(gn.gradient(c), g_dp, rtol=1e-9, atol=1e-12)

    def test_hessian_spd(self, gn):
        eigs = np.linalg.eigvalsh(gn.hessian)
        assert np.all(eigs > 0)

    def test_hessian_symmetric(self, gn):
        np.testing.assert_allclose(gn.hessian, gn.hessian.T, atol=1e-12)


class TestOneShotSolve:
    def test_single_step_reaches_machine_zero(self, gn):
        c, j = gn.solve()
        assert j < 1e-20

    def test_independent_of_start(self, gn, laplace_problem):
        rng = np.random.default_rng(1)
        c1, _ = gn.solve(c0=np.zeros(laplace_problem.n_control))
        c2, _ = gn.solve(c0=rng.standard_normal(laplace_problem.n_control))
        np.testing.assert_allclose(c1, c2, atol=1e-8)

    def test_beats_adam_by_orders(self, gn, laplace_problem):
        """The extension's point: 1 Newton step vs hundreds of Adam steps."""
        _, j_newton = gn.solve()
        dp = LaplaceDP(laplace_problem)
        _, hist = optimize(dp, n_iterations=100, initial_lr=1e-2)
        assert j_newton < hist.best_cost * 1e-6

    def test_matches_adam_limit_control(self, gn, laplace_problem):
        c_newton, _ = gn.solve()
        dp = LaplaceDP(laplace_problem)
        c_adam, _ = optimize(dp, n_iterations=800, initial_lr=1e-2)
        assert np.max(np.abs(c_newton - c_adam)) < 0.02

    def test_gradient_zero_at_solution(self, gn):
        c, _ = gn.solve()
        assert np.linalg.norm(gn.gradient(c)) < 1e-10


class TestTikhonov:
    def test_regularisation_shrinks_control(self, laplace_problem):
        gn0 = LaplaceGaussNewton(laplace_problem)
        gn_reg = LaplaceGaussNewton(laplace_problem, tikhonov=10.0)
        c0, _ = gn0.solve()
        c_reg, _ = gn_reg.solve()
        assert np.linalg.norm(c_reg) < np.linalg.norm(c0)

    def test_regularised_cost_higher(self, laplace_problem):
        gn_reg = LaplaceGaussNewton(laplace_problem, tikhonov=1.0)
        _, j = gn_reg.solve()
        assert j > 1e-20  # no longer exactly zero

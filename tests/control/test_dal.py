"""Tests for the direct-adjoint-looping oracles."""

import numpy as np
import pytest

from repro.control.dal import LaplaceDAL, NavierStokesDAL
from repro.control.dp import LaplaceDP, NavierStokesDP
from repro.control.loop import optimize
from repro.pde.navier_stokes import NSConfig


class TestLaplaceDAL:
    def test_value_matches_dp(self, laplace_problem):
        dal = LaplaceDAL(laplace_problem)
        dp = LaplaceDP(laplace_problem)
        c = laplace_problem.zero_control() + 0.05
        assert dal.value(c) == pytest.approx(dp.value(c), rel=1e-12)

    def test_adjoint_boundary_conditions(self, laplace_problem):
        """λ vanishes on the three fixed walls; equals 2·mismatch on top."""
        dal = LaplaceDAL(laplace_problem)
        p = laplace_problem
        c = p.zero_control()
        lam = dal.solve_adjoint(c)
        np.testing.assert_allclose(lam[p.bottom], 0.0, atol=1e-12)
        np.testing.assert_allclose(lam[p.left], 0.0, atol=1e-12)
        np.testing.assert_allclose(lam[p.right], 0.0, atol=1e-12)
        u = dal.solver.solve_numpy(p.rhs(c))
        mism = p.flux_rows @ u - p.target
        np.testing.assert_allclose(lam[p.top], 2 * mism, atol=1e-10)

    def test_gradient_direction_agrees_with_dp(self, laplace_problem):
        """OTD vs DTO gradients differ in metric (quadrature weights) but
        must be strongly aligned for the smooth Laplace problem."""
        dal = LaplaceDAL(laplace_problem)
        dp = LaplaceDP(laplace_problem)
        c = laplace_problem.zero_control()
        _, gd = dal.value_and_grad(c)
        _, gp = dp.value_and_grad(c)
        cos = gd @ gp / (np.linalg.norm(gd) * np.linalg.norm(gp))
        assert cos > 0.97

    def test_gradient_larger_than_dp(self, laplace_problem):
        """The paper: 'DAL converged despite the gradients rising to very
        large values' — the continuous gradient carries no quadrature
        weights, so its norm is ~1/h larger."""
        dal = LaplaceDAL(laplace_problem)
        dp = LaplaceDP(laplace_problem)
        c = laplace_problem.zero_control()
        _, gd = dal.value_and_grad(c)
        _, gp = dp.value_and_grad(c)
        assert np.linalg.norm(gd) > 3 * np.linalg.norm(gp)

    def test_optimisation_converges(self, laplace_problem):
        dal = LaplaceDAL(laplace_problem)
        _, hist = optimize(dal, n_iterations=300, initial_lr=1e-2)
        assert hist.best_cost < 1e-5

    def test_gradient_descent_direction_reduces_cost(self, laplace_problem):
        dal = LaplaceDAL(laplace_problem)
        c = laplace_problem.zero_control()
        j0, g = dal.value_and_grad(c)
        j1 = dal.value(c - 1e-4 * g)
        assert j1 < j0


class TestNavierStokesDAL:
    @pytest.fixture(scope="class")
    def dal(self, channel_problem):
        cfg = NSConfig(reynolds=100.0, refinements=5, pseudo_dt=0.5)
        return NavierStokesDAL(channel_problem, cfg, adjoint_refinements=25)

    def test_value_matches_solver(self, dal, channel_problem):
        c = channel_problem.default_control()
        st = channel_problem.solve(c, dal.config)
        assert dal.value(c) == pytest.approx(
            channel_problem.cost(st.u, st.v), rel=1e-12
        )

    def test_adjoint_dirichlet_boundaries(self, dal, channel_problem):
        c = channel_problem.default_control()
        st = channel_problem.solve(c, dal.config)
        adj = dal.solve_adjoint(st.u, st.v)
        pr = channel_problem
        for g in ("inflow", "wall_bottom", "wall_top", "blowing", "suction"):
            idx = pr.cloud.groups[g]
            np.testing.assert_allclose(adj.lx[idx], 0.0, atol=1e-9)
            np.testing.assert_allclose(adj.ly[idx], 0.0, atol=1e-9)

    def test_gradient_partially_aligned_with_dp(self, dal, channel_problem):
        """The continuous adjoint gradient is *approximately* right (it
        drives early iterations) but NOT exact — the paper's central
        observation about DAL on Navier–Stokes."""
        dp = NavierStokesDP(channel_problem, dal.config)
        c = channel_problem.default_control()
        _, gd = dal.value_and_grad(c)
        _, gp = dp.value_and_grad(c)
        cos = gd @ gp / (np.linalg.norm(gd) * np.linalg.norm(gp))
        assert 0.3 < cos < 0.999  # aligned but inexact

    def test_descent_direction_initially(self, dal, channel_problem):
        c = channel_problem.default_control()
        j0, g = dal.value_and_grad(c)
        j1 = dal.value(c - 1e-3 * g / max(np.linalg.norm(g), 1e-12))
        assert j1 < j0

    def test_default_adjoint_refinements(self, channel_problem):
        d = NavierStokesDAL(channel_problem, NSConfig(refinements=3))
        assert d.adjoint_refinements >= 15

"""Tests for the differentiable-programming oracles."""

import numpy as np
import pytest

from repro.autodiff.check import directional_numerical_derivative
from repro.autodiff.linalg import LUSolver
from repro.autodiff.sparse import SparseLUSolver
from repro.cloud.square import SquareCloud
from repro.control.dp import LaplaceDP, NavierStokesDP
from repro.control.loop import optimize
from repro.pde.laplace import LaplaceControlProblem
from repro.pde.navier_stokes import NSConfig


class TestLaplaceDP:
    def test_value_matches_direct_solve(self, laplace_problem):
        dp = LaplaceDP(laplace_problem)
        c = laplace_problem.zero_control()
        u = dp.solve_state(c)
        assert dp.value(c) == pytest.approx(
            laplace_problem.cost_from_state(u), rel=1e-12
        )

    def test_gradient_exact_vs_fd(self, laplace_problem):
        dp = LaplaceDP(laplace_problem)
        c0 = laplace_problem.zero_control() + 0.1
        _, g = dp.value_and_grad(c0)
        rng = np.random.default_rng(0)
        for _ in range(3):
            d = rng.standard_normal(c0.shape)
            d /= np.linalg.norm(d)
            num = directional_numerical_derivative(dp.value, c0, d, eps=1e-6)
            assert abs(float(g @ d) - num) < 1e-8 * max(1.0, abs(num))

    def test_gradient_zero_at_discrete_optimum(self, laplace_problem):
        """At the (convex) discrete optimum the DP gradient vanishes."""
        dp = LaplaceDP(laplace_problem)
        c_star, _ = optimize(dp, n_iterations=600, initial_lr=1e-2)
        _, g = dp.value_and_grad(c_star)
        assert np.linalg.norm(g) < 1e-3

    def test_drives_cost_to_machine_precision_scale(self, laplace_problem):
        """The paper's headline: DP reaches J ~ 1e-9 (2.2e-9 in Table 3)."""
        dp = LaplaceDP(laplace_problem)
        _, hist = optimize(dp, n_iterations=500, initial_lr=1e-2)
        assert hist.best_cost < 1e-7

    def test_optimal_control_close_to_analytic(self, laplace_problem):
        dp = LaplaceDP(laplace_problem)
        c_star, _ = optimize(dp, n_iterations=500, initial_lr=1e-2)
        err = np.max(np.abs(c_star - laplace_problem.optimal_control()))
        assert err < 0.15  # discretisation-level agreement

    def test_initial_control_is_zero(self, laplace_problem):
        np.testing.assert_array_equal(
            LaplaceDP(laplace_problem).initial_control(),
            np.zeros(laplace_problem.n_control),
        )


class TestLaplaceDPLocalBackend:
    """The sparse RBF-FD fast path through the same DP oracle."""

    @pytest.fixture(scope="class")
    def local_problem(self):
        return LaplaceControlProblem(SquareCloud(12), backend="local")

    def test_uses_sparse_solver(self, local_problem, laplace_problem):
        assert isinstance(LaplaceDP(local_problem).solver, SparseLUSolver)
        assert isinstance(LaplaceDP(laplace_problem).solver, LUSolver)

    def test_gradient_exact_vs_fd(self, local_problem):
        dp = LaplaceDP(local_problem)
        c0 = local_problem.zero_control() + 0.1
        _, g = dp.value_and_grad(c0)
        rng = np.random.default_rng(1)
        for _ in range(3):
            d = rng.standard_normal(c0.shape)
            d /= np.linalg.norm(d)
            num = directional_numerical_derivative(dp.value, c0, d, eps=1e-6)
            assert abs(float(g @ d) - num) < 1e-8 * max(1.0, abs(num))

    def test_factorizes_once_across_control_loop(self, local_problem):
        # Factorise-once/solve-many: the system matrix is constant, so
        # repeated oracle calls inside the optimisation loop must never
        # re-factorise.
        dp = LaplaceDP(local_problem)
        assert dp.solver.n_factorizations == 1
        c = local_problem.zero_control() + 0.05
        for _ in range(3):
            _, g = dp.value_and_grad(c)
            c = c - 1e-2 * g
        assert dp.solver.n_factorizations == 1

    def test_reaches_comparable_optimum(self, local_problem):
        # Acceptance bar: the sparse path lands within 10x of the dense
        # final cost on the same cloud.
        dense = LaplaceDP(LaplaceControlProblem(SquareCloud(12)))
        local = LaplaceDP(local_problem)
        _, hist_d = optimize(dense, n_iterations=120, initial_lr=1e-2)
        _, hist_l = optimize(local, n_iterations=120, initial_lr=1e-2)
        assert hist_l.best_cost <= 10.0 * hist_d.best_cost + 1e-12


class TestNavierStokesDP:
    @pytest.fixture(scope="class")
    def dp(self, channel_problem):
        return NavierStokesDP(
            channel_problem, NSConfig(reynolds=100.0, refinements=5, pseudo_dt=0.5)
        )

    def test_value_consistent_with_ad_forward(self, dp, channel_problem):
        c = channel_problem.default_control()
        j_np = dp.value(c)
        j_ad, _ = dp.value_and_grad(c)
        assert j_np == pytest.approx(j_ad, rel=1e-12)

    def test_gradient_vs_fd(self, dp, channel_problem):
        c0 = channel_problem.default_control()
        _, g = dp.value_and_grad(c0)
        rng = np.random.default_rng(3)
        d = rng.standard_normal(c0.shape)
        d /= np.linalg.norm(d)
        num = directional_numerical_derivative(dp.value, c0, d, eps=1e-6)
        assert abs(float(g @ d) - num) < 1e-6 * max(1.0, abs(num))

    def test_short_optimisation_reduces_cost(self, dp):
        c, hist = optimize(dp, n_iterations=15, initial_lr=1e-1)
        assert hist.best_cost < hist.costs[0] * 0.7

    def test_initial_control_parabolic(self, dp, channel_problem):
        np.testing.assert_allclose(
            dp.initial_control(), channel_problem.default_control()
        )


class TestSmoothnessPenalty:
    """The §4 control-variation penalty (opt-in extension)."""

    def test_penalised_laplace_value_adds_term(self, laplace_problem):
        from repro.control.dp import LaplaceDP

        c = laplace_problem.zero_control() + np.sin(
            7 * laplace_problem.control_x
        )
        plain = LaplaceDP(laplace_problem)
        pen = LaplaceDP(laplace_problem, smoothness_weight=1e-2)
        assert pen.value(c) > plain.value(c)

    def test_zero_weight_is_noop(self, laplace_problem):
        from repro.control.dp import LaplaceDP

        c = laplace_problem.zero_control() + 0.1
        assert LaplaceDP(laplace_problem, smoothness_weight=0.0).value(
            c
        ) == pytest.approx(LaplaceDP(laplace_problem).value(c), rel=1e-14)

    def test_penalty_gradient_correct(self, laplace_problem):
        from repro.autodiff.check import directional_numerical_derivative
        from repro.control.dp import LaplaceDP

        dp = LaplaceDP(laplace_problem, smoothness_weight=1e-2)
        c0 = laplace_problem.zero_control() + 0.05
        _, g = dp.value_and_grad(c0)
        rng = np.random.default_rng(0)
        d = rng.standard_normal(c0.shape)
        d /= np.linalg.norm(d)
        num = directional_numerical_derivative(dp.value, c0, d, eps=1e-6)
        assert abs(float(g @ d) - num) < 1e-7 * max(1.0, abs(num))

    def test_constant_control_unpenalised(self, laplace_problem):
        from repro.control.dp import LaplaceDP

        c = np.full(laplace_problem.n_control, 0.3)
        plain = LaplaceDP(laplace_problem)
        pen = LaplaceDP(laplace_problem, smoothness_weight=10.0)
        assert pen.value(c) == pytest.approx(plain.value(c), rel=1e-12)

    def test_ns_penalised_value_consistent_with_grad_path(self, channel_problem):
        from repro.control.dp import NavierStokesDP
        from repro.pde.navier_stokes import NSConfig

        cfg = NSConfig(reynolds=100.0, refinements=4, pseudo_dt=0.5)
        dp = NavierStokesDP(channel_problem, cfg, smoothness_weight=1e-3)
        c = channel_problem.default_control() * 1.1
        j_np = dp.value(c)
        j_ad, _ = dp.value_and_grad(c)
        assert j_np == pytest.approx(j_ad, rel=1e-12)

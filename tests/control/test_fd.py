"""Tests for the finite-difference gradient baseline."""

import numpy as np
import pytest

from repro.control.dp import LaplaceDP
from repro.control.fd import FiniteDifferenceOracle


class TestOnQuadratic:
    def test_gradient_accuracy(self):
        target = np.array([1.0, -1.0, 2.0])
        fd = FiniteDifferenceOracle(
            lambda c: float(np.sum((c - target) ** 2)), np.zeros(3)
        )
        j, g = fd.value_and_grad(np.zeros(3))
        assert j == pytest.approx(6.0)
        np.testing.assert_allclose(g, -2 * target, atol=1e-8)

    def test_evaluation_count(self):
        fd = FiniteDifferenceOracle(lambda c: float(c @ c), np.zeros(4))
        fd.value_and_grad(np.ones(4))
        assert fd.n_evaluations == 1 + 2 * 4

    def test_initial_control_copied(self):
        init = np.ones(2)
        fd = FiniteDifferenceOracle(lambda c: 0.0, init)
        out = fd.initial_control()
        out[0] = 99.0
        np.testing.assert_array_equal(fd.initial_control(), [1.0, 1.0])

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            FiniteDifferenceOracle(lambda c: 0.0, np.zeros(1), eps=0.0)


class TestAgainstDP:
    def test_fd_matches_dp_on_laplace(self, laplace_problem):
        """Footnote 11: classical FD provides accurate gradients — they
        must agree with the exact DP gradient to FD truncation error."""
        dp = LaplaceDP(laplace_problem)
        fd = FiniteDifferenceOracle(dp.value, laplace_problem.zero_control())
        c = laplace_problem.zero_control() + 0.05
        _, g_dp = dp.value_and_grad(c)
        _, g_fd = fd.value_and_grad(c)
        np.testing.assert_allclose(g_fd, g_dp, atol=1e-6, rtol=1e-5)

"""Tests for the oracle protocol and result container."""

import numpy as np

from repro.control.dal import LaplaceDAL
from repro.control.dp import LaplaceDP
from repro.control.fd import FiniteDifferenceOracle
from repro.control.problem import ControlResult, CostOracle


class TestProtocolConformance:
    def test_all_oracles_satisfy_protocol(self, laplace_problem):
        oracles = [
            LaplaceDAL(laplace_problem),
            LaplaceDP(laplace_problem),
            FiniteDifferenceOracle(lambda c: 0.0, np.zeros(3)),
        ]
        for o in oracles:
            assert isinstance(o, CostOracle)


class TestControlResult:
    def test_summary_format(self):
        r = ControlResult(
            method="DP",
            problem="laplace",
            control=np.zeros(3),
            final_cost=2.2e-9,
            iterations=500,
            wall_time_s=1.5,
            peak_mem_bytes=1024**2,
        )
        s = r.summary()
        assert "DP" in s and "2.2" in s and "500" in s

    def test_defaults(self):
        r = ControlResult(
            method="DAL",
            problem="ns",
            control=np.zeros(1),
            final_cost=0.1,
            iterations=10,
        )
        assert r.cost_history == []
        assert r.extra == {}

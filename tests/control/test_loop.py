"""Tests for the shared optimisation loop."""

import numpy as np
import pytest

from repro.control.loop import OptimizationHistory, optimize


class QuadraticOracle:
    """J(c) = ||c − t||² with exact gradient."""

    def __init__(self, target):
        self.target = np.asarray(target, dtype=np.float64)
        self.calls = 0

    def value(self, c):
        return float(np.sum((c - self.target) ** 2))

    def value_and_grad(self, c):
        self.calls += 1
        return self.value(c), 2.0 * (c - self.target)

    def initial_control(self):
        return np.zeros_like(self.target)


class NaNOracle(QuadraticOracle):
    """Returns NaN gradients after a few iterations (DAL-on-NS style)."""

    def value_and_grad(self, c):
        j, g = super().value_and_grad(c)
        if self.calls > 3:
            g = np.full_like(g, np.nan)
        return j, g


class TestOptimize:
    def test_converges_on_quadratic(self):
        oracle = QuadraticOracle([1.0, -2.0, 0.5])
        c, hist = optimize(oracle, n_iterations=300, initial_lr=0.1)
        np.testing.assert_allclose(c, oracle.target, atol=1e-3)
        assert hist.costs[-1] < hist.costs[0]

    def test_history_lengths(self):
        oracle = QuadraticOracle([1.0])
        _, hist = optimize(oracle, n_iterations=50, initial_lr=0.1)
        assert len(hist.costs) == 50
        assert len(hist.grad_norms) == 50
        assert len(hist.learning_rates) == 50
        assert hist.wall_time_s > 0

    def test_schedule_applied(self):
        oracle = QuadraticOracle([1.0])
        _, hist = optimize(oracle, n_iterations=100, initial_lr=1e-2)
        assert hist.learning_rates[0] == pytest.approx(1e-2)
        assert hist.learning_rates[60] == pytest.approx(1e-3)
        assert hist.learning_rates[90] == pytest.approx(1e-4)

    def test_returns_best_not_last(self):
        # Overshooting oracle: huge lr makes the last iterate worse.
        oracle = QuadraticOracle([1.0])
        c, hist = optimize(oracle, n_iterations=20, initial_lr=5.0)
        assert hist.best_cost <= hist.costs[-1] + 1e-12
        assert oracle.value(c) == pytest.approx(hist.best_cost)

    def test_custom_initial_control(self):
        oracle = QuadraticOracle([0.0, 0.0])
        c, hist = optimize(
            oracle, n_iterations=5, initial_lr=0.1, c0=np.array([3.0, 3.0])
        )
        assert hist.costs[0] == pytest.approx(18.0)

    def test_callback_invoked(self):
        oracle = QuadraticOracle([1.0])
        seen = []
        optimize(
            oracle,
            n_iterations=7,
            initial_lr=0.1,
            callback=lambda it, c, j: seen.append(it),
        )
        assert seen == list(range(7))

    def test_gradient_clipping(self):
        oracle = QuadraticOracle([100.0])
        _, hist_unclipped = optimize(oracle, n_iterations=3, initial_lr=0.1)
        _, hist = optimize(oracle, n_iterations=3, initial_lr=0.1, grad_clip=1.0)
        assert all(n <= 1.0 + 1e-12 for n in hist.grad_norms[1:])

    def test_nan_gradient_stops_loop(self):
        oracle = NaNOracle([1.0])
        _, hist = optimize(oracle, n_iterations=100, initial_lr=0.1)
        assert len(hist.costs) < 100  # stopped early

    def test_invalid_iteration_count(self):
        with pytest.raises(ValueError):
            optimize(QuadraticOracle([1.0]), n_iterations=0, initial_lr=0.1)

    def test_empty_history_best_cost(self):
        assert OptimizationHistory().best_cost == np.inf


class TestBatchedCostSweep:
    """batched_cost_sweep: one stacked forward scores N candidates."""

    def test_fallback_loop_without_cost_tensor(self):
        from repro.control.loop import batched_cost_sweep

        oracle = QuadraticOracle([1.0, -2.0, 0.5])
        controls = np.arange(12, dtype=np.float64).reshape(4, 3)
        out = batched_cost_sweep(oracle, controls)
        assert out.shape == (4,)
        assert np.array_equal(out, [oracle.value(c) for c in controls])

    def test_dp_oracle_bitwise_matches_value_loop(self, laplace_problem_local):
        from repro.control.dp import LaplaceDP
        from repro.control.loop import batched_cost_sweep

        oracle = LaplaceDP(laplace_problem_local)
        rng = np.random.default_rng(3)
        controls = rng.standard_normal((5, laplace_problem_local.n_control))
        out = batched_cost_sweep(oracle, controls)
        # Sparse backend: the multi-RHS SuperLU solve is bitwise the
        # per-candidate solve, so each entry equals oracle.value exactly.
        assert np.array_equal(out, [oracle.value(c) for c in controls])

    def test_single_candidate_matches_value(self, laplace_problem_local):
        from repro.control.dp import LaplaceDP
        from repro.control.loop import batched_cost_sweep

        oracle = LaplaceDP(laplace_problem_local)
        c = np.linspace(-1, 1, laplace_problem_local.n_control)
        out = batched_cost_sweep(oracle, c[None, :])
        assert out.shape == (1,)
        assert out[0] == oracle.value(c)

    def test_empty_population(self, laplace_problem_local):
        from repro.control.dp import LaplaceDP
        from repro.control.loop import batched_cost_sweep

        oracle = LaplaceDP(laplace_problem_local)
        out = batched_cost_sweep(
            oracle, np.empty((0, laplace_problem_local.n_control))
        )
        assert out.shape == (0,)

    def test_rejects_non_2d(self):
        from repro.control.loop import batched_cost_sweep

        with pytest.raises(ValueError, match="controls"):
            batched_cost_sweep(QuadraticOracle([0.0]), np.zeros(3))

"""Tests for wall-time and peak-memory measurement."""

import time
import tracemalloc

import numpy as np

from repro.utils.timers import PeakMemory, Timer


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.02)
        assert 0.015 < t.elapsed < 1.0

    def test_zero_before_exit(self):
        t = Timer()
        assert t.elapsed == 0.0


class TestPeakMemory:
    def test_detects_allocation(self):
        with PeakMemory() as m:
            _ = np.zeros(2_000_000)  # ~16 MB
        assert m.peak_bytes > 10 * 2**20
        assert m.peak_mib > 10

    def test_stops_tracing_when_started_here(self):
        assert not tracemalloc.is_tracing()
        with PeakMemory():
            pass
        assert not tracemalloc.is_tracing()

    def test_nested_usage(self):
        with PeakMemory() as outer:
            _ = np.zeros(500_000)
            with PeakMemory() as inner:
                _ = np.zeros(250_000)
            assert inner.peak_bytes > 0
        assert outer.peak_bytes > 0
        assert not tracemalloc.is_tracing()

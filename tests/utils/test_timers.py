"""Tests for wall-time and peak-memory measurement."""

import subprocess
import sys
import time
import tracemalloc

import numpy as np
import pytest

from repro.utils.timers import PeakMemory, Timer, _child_peak_rss_bytes


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.02)
        assert 0.015 < t.elapsed < 1.0

    def test_zero_before_exit(self):
        t = Timer()
        assert t.elapsed == 0.0

    def test_elapsed_set_when_body_raises(self):
        t = Timer()
        with pytest.raises(RuntimeError, match="boom"):
            with t:
                time.sleep(0.01)
                raise RuntimeError("boom")
        assert t.elapsed > 0.005


class TestTimerLaps:
    def test_lap_returns_increment_and_accumulates(self):
        with Timer() as t:
            time.sleep(0.01)
            first = t.lap("work")
            time.sleep(0.01)
            second = t.lap("work")
        assert first > 0.005
        assert second > 0.005
        assert t.laps()["work"] == pytest.approx(first + second)

    def test_mark_resets_without_recording(self):
        with Timer() as t:
            time.sleep(0.02)
            t.mark()  # discard the sleep
            dt = t.lap("fast")
        assert dt < 0.015
        assert set(t.laps()) == {"fast"}

    def test_separate_phases_tracked_independently(self):
        with Timer() as t:
            time.sleep(0.01)
            t.lap("grad")
            t.lap("update")  # immediately after: near-zero
        laps = t.laps()
        assert laps["grad"] > 0.005
        assert laps["update"] < laps["grad"]

    def test_laps_do_not_affect_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
            t.mark()
            t.lap("a")
        assert t.elapsed > 0.005

    def test_laps_returns_a_copy(self):
        with Timer() as t:
            t.lap("a")
        t.laps()["a"] = 123.0
        assert t.laps()["a"] != 123.0

    def test_mark_before_enter_raises(self):
        with pytest.raises(RuntimeError, match="before entering"):
            Timer().mark()

    def test_lap_before_enter_raises(self):
        with pytest.raises(RuntimeError, match="before entering"):
            Timer().lap("x")

    def test_laps_empty_before_use(self):
        assert Timer().laps() == {}


class TestTimerReentrancy:
    """Nested ``with`` on one Timer: inner mark/lap must not reset the
    outer frame's lap state (the PeakMemory/Timer composition bug)."""

    def test_nested_mark_does_not_reset_outer_lap_clock(self):
        t = Timer()
        with t:
            time.sleep(0.02)  # outer lap clock accumulates
            with t:
                t.mark()  # inner frame only
                t.lap("inner")
            outer_dt = t.lap("outer")
        # Without frame isolation the inner mark() would have zeroed the
        # outer lap clock and outer_dt would miss the 20 ms sleep.
        assert outer_dt > 0.015

    def test_nested_laps_share_the_namespace(self):
        t = Timer()
        with t:
            time.sleep(0.01)
            with t:
                time.sleep(0.01)
                t.lap("phase")
            t.lap("phase")
        # Inner lap measured from inner entry; outer lap from outer entry
        # (never marked), so the total spans both sleeps.
        assert t.laps()["phase"] > 0.025

    def test_elapsed_tracks_most_recently_exited_frame(self):
        t = Timer()
        with t:
            time.sleep(0.02)
            with t:
                time.sleep(0.005)
            inner_elapsed = t.elapsed
        assert 0.004 < inner_elapsed < 0.02
        assert t.elapsed > 0.02  # outer exit overwrites

    def test_inner_exception_keeps_outer_frame_usable(self):
        t = Timer()
        with t:
            time.sleep(0.01)
            with pytest.raises(RuntimeError, match="boom"):
                with t:
                    raise RuntimeError("boom")
            dt = t.lap("outer")
        assert dt > 0.005


class TestPeakMemory:
    def test_detects_allocation(self):
        with PeakMemory() as m:
            _ = np.zeros(2_000_000)  # ~16 MB
        assert m.peak_bytes > 10 * 2**20
        assert m.peak_mib > 10

    def test_stops_tracing_when_started_here(self):
        assert not tracemalloc.is_tracing()
        with PeakMemory():
            pass
        assert not tracemalloc.is_tracing()

    def test_nested_usage(self):
        with PeakMemory() as outer:
            _ = np.zeros(500_000)
            with PeakMemory() as inner:
                _ = np.zeros(250_000)
            assert inner.peak_bytes > 0
        assert outer.peak_bytes > 0
        assert not tracemalloc.is_tracing()

    def test_raising_body_still_stops_tracing(self):
        # A benchmark body that blows up must not leave tracemalloc
        # running and poison every later measurement.
        assert not tracemalloc.is_tracing()
        with pytest.raises(RuntimeError, match="boom"):
            with PeakMemory() as m:
                _ = np.zeros(500_000)
                raise RuntimeError("boom")
        assert not tracemalloc.is_tracing()
        # The allocation made before the raise is still reported.
        assert m.peak_bytes > 3 * 10**6

    def test_raising_inner_does_not_break_outer(self):
        with PeakMemory() as outer:
            _ = np.zeros(500_000)  # ~4 MB
            with pytest.raises(ValueError):
                with PeakMemory():
                    raise ValueError("inner failure")
            _ = np.zeros(125_000)  # ~1 MB, smaller than the first block
        assert not tracemalloc.is_tracing()
        # The outer manager must still see the 4 MB allocated *before*
        # the failed inner block, even though the inner reset the peak.
        assert outer.peak_bytes > 3 * 10**6

    def test_nested_outer_sees_pre_inner_allocation(self):
        with PeakMemory() as outer:
            big = np.zeros(2_000_000)  # ~16 MB
            del big
            with PeakMemory() as inner:
                _ = np.zeros(125_000)  # ~1 MB
        # Inner measures only its own block; outer keeps the folded-in
        # 16 MB peak from before the inner reset.
        assert inner.peak_bytes < 8 * 10**6
        assert outer.peak_bytes > 12 * 10**6

    def test_reusable_after_exception(self):
        # Back-to-back measurements after a failure start from a clean
        # slate (tracing off, fresh peak).
        with pytest.raises(RuntimeError):
            with PeakMemory():
                _ = np.zeros(2_000_000)
                raise RuntimeError
        with PeakMemory() as m:
            _ = np.zeros(125_000)  # ~1 MB
        assert m.peak_bytes < 8 * 10**6
        assert not tracemalloc.is_tracing()

    def test_body_stopping_tracemalloc_is_tolerated(self):
        with PeakMemory() as m:
            _ = np.zeros(125_000)
            tracemalloc.stop()  # hostile body
        assert m.peak_bytes == 0
        assert not tracemalloc.is_tracing()


def _spawn_hungry_child(extra_bytes: int) -> None:
    """Run a child process that allocates ``extra_bytes`` above the
    current children RSS watermark, then exits (and is reaped)."""
    need = _child_peak_rss_bytes() + extra_bytes
    subprocess.run(
        [sys.executable, "-c",
         f"b = bytearray({need}); b[::4096] = b'x' * len(b[::4096])"],
        check=True,
    )


@pytest.mark.skipif(_child_peak_rss_bytes() == 0 and sys.platform == "win32",
                    reason="needs getrusage(RUSAGE_CHILDREN)")
class TestChildMemory:
    def test_child_allocation_tracked(self):
        grow = 96 * 2**20  # well above kernel page-accounting noise
        with PeakMemory(track_children=True) as m:
            _spawn_hungry_child(grow)
        assert m.child_peak_bytes >= grow
        # The block itself allocated almost nothing in-process, so the
        # child term dominates the combined figure.
        assert m.total_peak_bytes == m.child_peak_bytes
        assert m.total_peak_bytes > m.peak_bytes

    def test_no_child_growth_reports_zero(self):
        # The children watermark is cumulative per process: a block that
        # spawns nothing (or only small children) must not inherit credit
        # for some earlier test's hungry child.
        with PeakMemory(track_children=True) as m:
            _ = np.zeros(125_000)
        assert m.child_peak_bytes == 0
        assert m.total_peak_bytes == m.peak_bytes

    def test_disabled_by_default(self):
        with PeakMemory() as m:
            _spawn_hungry_child(8 * 2**20)
        assert m.child_peak_bytes == 0
        assert m.total_peak_bytes == m.peak_bytes

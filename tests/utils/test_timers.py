"""Tests for wall-time and peak-memory measurement."""

import time
import tracemalloc

import numpy as np
import pytest

from repro.utils.timers import PeakMemory, Timer


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.02)
        assert 0.015 < t.elapsed < 1.0

    def test_zero_before_exit(self):
        t = Timer()
        assert t.elapsed == 0.0


class TestPeakMemory:
    def test_detects_allocation(self):
        with PeakMemory() as m:
            _ = np.zeros(2_000_000)  # ~16 MB
        assert m.peak_bytes > 10 * 2**20
        assert m.peak_mib > 10

    def test_stops_tracing_when_started_here(self):
        assert not tracemalloc.is_tracing()
        with PeakMemory():
            pass
        assert not tracemalloc.is_tracing()

    def test_nested_usage(self):
        with PeakMemory() as outer:
            _ = np.zeros(500_000)
            with PeakMemory() as inner:
                _ = np.zeros(250_000)
            assert inner.peak_bytes > 0
        assert outer.peak_bytes > 0
        assert not tracemalloc.is_tracing()

    def test_raising_body_still_stops_tracing(self):
        # A benchmark body that blows up must not leave tracemalloc
        # running and poison every later measurement.
        assert not tracemalloc.is_tracing()
        with pytest.raises(RuntimeError, match="boom"):
            with PeakMemory() as m:
                _ = np.zeros(500_000)
                raise RuntimeError("boom")
        assert not tracemalloc.is_tracing()
        # The allocation made before the raise is still reported.
        assert m.peak_bytes > 3 * 10**6

    def test_raising_inner_does_not_break_outer(self):
        with PeakMemory() as outer:
            _ = np.zeros(500_000)  # ~4 MB
            with pytest.raises(ValueError):
                with PeakMemory():
                    raise ValueError("inner failure")
            _ = np.zeros(125_000)  # ~1 MB, smaller than the first block
        assert not tracemalloc.is_tracing()
        # The outer manager must still see the 4 MB allocated *before*
        # the failed inner block, even though the inner reset the peak.
        assert outer.peak_bytes > 3 * 10**6

    def test_nested_outer_sees_pre_inner_allocation(self):
        with PeakMemory() as outer:
            big = np.zeros(2_000_000)  # ~16 MB
            del big
            with PeakMemory() as inner:
                _ = np.zeros(125_000)  # ~1 MB
        # Inner measures only its own block; outer keeps the folded-in
        # 16 MB peak from before the inner reset.
        assert inner.peak_bytes < 8 * 10**6
        assert outer.peak_bytes > 12 * 10**6

    def test_reusable_after_exception(self):
        # Back-to-back measurements after a failure start from a clean
        # slate (tracing off, fresh peak).
        with pytest.raises(RuntimeError):
            with PeakMemory():
                _ = np.zeros(2_000_000)
                raise RuntimeError
        with PeakMemory() as m:
            _ = np.zeros(125_000)  # ~1 MB
        assert m.peak_bytes < 8 * 10**6
        assert not tracemalloc.is_tracing()

    def test_body_stopping_tracemalloc_is_tolerated(self):
        with PeakMemory() as m:
            _ = np.zeros(125_000)
            tracemalloc.stop()  # hostile body
        assert m.peak_bytes == 0
        assert not tracemalloc.is_tracing()

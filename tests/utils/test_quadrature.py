"""Tests for trapezoid quadrature on boundary node sets."""

import numpy as np
import pytest

from repro.utils.quadrature import boundary_integral, trapezoid_weights


class TestWeights:
    def test_uniform_weights(self):
        w = trapezoid_weights(np.linspace(0, 1, 5))
        np.testing.assert_allclose(w, [0.125, 0.25, 0.25, 0.25, 0.125])

    def test_weights_sum_to_length(self):
        coords = np.sort(np.random.default_rng(0).uniform(0, 3, 20))
        assert abs(trapezoid_weights(coords).sum() - (coords[-1] - coords[0])) < 1e-12

    def test_linear_exact(self):
        x = np.linspace(0, 2, 17)
        w = trapezoid_weights(x)
        assert abs(w @ (3 * x + 1) - (3 * 2 + 2)) < 1e-12  # ∫(3x+1) over [0,2] = 8

    def test_nonuniform_linear_exact(self):
        x = np.sort(np.random.default_rng(1).uniform(0, 1, 30))
        w = trapezoid_weights(x)
        exact = (x[-1] ** 2 - x[0] ** 2) / 2
        assert abs(w @ x - exact) < 1e-12

    def test_second_order_convergence(self):
        errs = []
        for n in (10, 20, 40):
            x = np.linspace(0, np.pi, n)
            w = trapezoid_weights(x)
            errs.append(abs(w @ np.sin(x) - 2.0))
        assert errs[1] / errs[2] > 3.0  # halving h → error /4

    def test_requires_two_nodes(self):
        with pytest.raises(ValueError):
            trapezoid_weights(np.array([1.0]))

    def test_requires_increasing(self):
        with pytest.raises(ValueError):
            trapezoid_weights(np.array([0.0, 0.5, 0.5, 1.0]))


class TestBoundaryIntegral:
    def test_handles_unsorted(self):
        rng = np.random.default_rng(2)
        x = np.linspace(0, 1, 21)
        perm = rng.permutation(21)
        val = boundary_integral((x**2)[perm], x[perm])
        assert abs(val - 1 / 3) < 1e-3

"""Tests for validation/error-metric helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_finite,
    max_abs_error,
    relative_l2_error,
    rms,
)


class TestCheckFinite:
    def test_passes_clean_array(self):
        x = np.ones(5)
        assert check_finite(x) is not None

    def test_raises_on_nan(self):
        with pytest.raises(FloatingPointError, match="non-finite"):
            check_finite(np.array([1.0, np.nan]))

    def test_raises_on_inf_with_name(self):
        with pytest.raises(FloatingPointError, match="velocity"):
            check_finite(np.array([np.inf]), name="velocity")


class TestErrors:
    def test_relative_l2(self):
        exact = np.array([3.0, 4.0])
        approx = exact * 1.01
        assert abs(relative_l2_error(approx, exact) - 0.01) < 1e-12

    def test_relative_l2_near_zero_reference(self):
        err = relative_l2_error(np.array([1e-3]), np.zeros(1))
        assert err == pytest.approx(1e-3)

    def test_max_abs(self):
        assert max_abs_error([1.0, 2.0], [1.5, 2.0]) == 0.5

    def test_rms(self):
        assert rms(np.array([3.0, 4.0])) == pytest.approx(np.sqrt(12.5))

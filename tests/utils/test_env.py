"""The boolean env-switch parser and its wiring into the bench flags."""

import pytest

from repro.bench.configs import is_full_scale, watchdog_enabled, compile_mode
from repro.utils.env import env_flag

TRUTHY_SPELLINGS = ["1", "true", "TRUE", "True", " 1 ", "yes", "YES", "on", "On"]
FALSY_SPELLINGS = ["0", " 0 ", "false", "FALSE", "False", "no", "NO", "off", "Off"]


class TestEnvFlag:
    @pytest.mark.parametrize("raw", TRUTHY_SPELLINGS)
    def test_truthy_matrix(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_X", raw)
        assert env_flag("REPRO_X") is True
        assert env_flag("REPRO_X", default=False) is True

    @pytest.mark.parametrize("raw", FALSY_SPELLINGS)
    def test_falsy_matrix(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_X", raw)
        assert env_flag("REPRO_X") is False
        # An explicit falsy spelling beats a truthy default.
        assert env_flag("REPRO_X", default=True) is False

    @pytest.mark.parametrize("default", [True, False])
    def test_unset_resolves_to_default(self, monkeypatch, default):
        monkeypatch.delenv("REPRO_X", raising=False)
        assert env_flag("REPRO_X", default=default) is default

    @pytest.mark.parametrize("raw", ["", "   "])
    @pytest.mark.parametrize("default", [True, False])
    def test_empty_resolves_to_default(self, monkeypatch, raw, default):
        monkeypatch.setenv("REPRO_X", raw)
        assert env_flag("REPRO_X", default=default) is default

    @pytest.mark.parametrize("raw", ["ture", "2", "enable", "y e s"])
    def test_typo_raises(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_X", raw)
        with pytest.raises(ValueError, match="REPRO_X"):
            env_flag("REPRO_X")


class TestFlagWiring:
    """Every REPRO_* boolean goes through the one parser.

    These pin the historical bug: ``REPRO_FULL=FALSE``, ``=no`` and
    ``=" 0 "`` used to count as *truthy* because each flag hand-rolled
    its own falsy set.
    """

    @pytest.mark.parametrize("raw", FALSY_SPELLINGS)
    def test_full_scale_falsy(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_FULL", raw)
        assert not is_full_scale()

    @pytest.mark.parametrize("raw", TRUTHY_SPELLINGS)
    def test_full_scale_truthy(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_FULL", raw)
        assert is_full_scale()

    @pytest.mark.parametrize("raw", FALSY_SPELLINGS)
    def test_watchdog_falsy(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_WATCHDOG", raw)
        assert not watchdog_enabled()

    @pytest.mark.parametrize("raw", TRUTHY_SPELLINGS)
    def test_watchdog_truthy(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_WATCHDOG", raw)
        assert watchdog_enabled()

    def test_watchdog_cli_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WATCHDOG", "no")
        assert watchdog_enabled(cli_value=True)

    @pytest.mark.parametrize("raw", FALSY_SPELLINGS)
    def test_compile_mode_falsy(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_COMPILE", raw)
        assert compile_mode() is False

    @pytest.mark.parametrize("raw,expected", [
        ("1", True), ("true", True), ("replay", True), ("REPLAY", True),
        ("codegen", "codegen"), ("CodeGen", "codegen"), ("", False),
    ])
    def test_compile_mode_tristate(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_COMPILE", raw)
        assert compile_mode() == expected

    def test_compile_mode_typo_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILE", "codgen")
        with pytest.raises(ValueError, match="REPRO_COMPILE"):
            compile_mode()

"""Tests for weight initialisers."""

import numpy as np

from repro.nn.init import glorot_normal, glorot_uniform, he_normal, zeros_init


class TestGlorot:
    def test_normal_variance(self):
        rng = np.random.default_rng(0)
        W = glorot_normal(rng, 400, 400)
        assert abs(W.var() - 2.0 / 800) < 0.0005

    def test_uniform_bounds(self):
        rng = np.random.default_rng(0)
        W = glorot_uniform(rng, 50, 50)
        a = np.sqrt(6.0 / 100)
        assert W.min() >= -a and W.max() <= a

    def test_shape(self):
        rng = np.random.default_rng(0)
        assert glorot_normal(rng, 3, 7).shape == (3, 7)


class TestHe:
    def test_variance(self):
        rng = np.random.default_rng(0)
        W = he_normal(rng, 500, 100)
        assert abs(W.var() - 2.0 / 500) < 0.0005


class TestZeros:
    def test_zeros(self):
        rng = np.random.default_rng(0)
        b = zeros_init(rng, 4, 9)
        assert b.shape == (9,)
        assert np.all(b == 0)

"""Tests for the MLP module."""

import numpy as np
import pytest

from repro.nn.mlp import MLP


class TestConstruction:
    def test_paper_laplace_architecture(self):
        m = MLP(2, (30, 30, 30), 1)
        assert m.widths == (2, 30, 30, 30, 1)
        assert m.n_layers == 4

    def test_paper_ns_architecture_param_count(self):
        m = MLP(2, (50,) * 5, 3)
        expected = (2 * 50 + 50) + 4 * (50 * 50 + 50) + (50 * 3 + 3)
        assert m.n_params() == expected

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            MLP(0, (4,), 1)
        with pytest.raises(ValueError):
            MLP(2, (0,), 1)
        with pytest.raises(ValueError):
            MLP(2, (4,), 0)

    def test_unknown_activation_raises(self):
        with pytest.raises(KeyError):
            MLP(2, (4,), 1, activation="relu6")


class TestInitParams:
    def test_shapes(self):
        m = MLP(2, (8, 4), 1)
        p = m.init_params(0)
        assert p[0]["W"].shape == (2, 8)
        assert p[1]["W"].shape == (8, 4)
        assert p[2]["W"].shape == (4, 1)
        assert all(np.all(layer["b"] == 0) for layer in p)

    def test_deterministic_per_seed(self):
        m = MLP(2, (8,), 1)
        p1, p2 = m.init_params(3), m.init_params(3)
        np.testing.assert_array_equal(p1[0]["W"], p2[0]["W"])

    def test_different_seeds_differ(self):
        m = MLP(2, (8,), 1)
        assert not np.allclose(m.init_params(0)[0]["W"], m.init_params(1)[0]["W"])

    def test_glorot_scale(self):
        m = MLP(100, (100,), 100)
        W = m.init_params(0)[0]["W"]
        # Glorot normal: std ≈ sqrt(2/200) = 0.1
        assert 0.08 < W.std() < 0.12


class TestApply:
    def test_output_shape(self):
        m = MLP(2, (8, 8), 3)
        p = m.init_params(0)
        out = m.apply(p, np.zeros((5, 2)))
        assert out.shape == (5, 3)

    def test_zero_bias_network_at_zero_input(self):
        m = MLP(2, (8,), 1)
        p = m.init_params(0)
        out = m.apply(p, np.zeros((1, 2)))
        np.testing.assert_allclose(out.data, 0.0, atol=1e-15)

    def test_linear_network_is_affine(self):
        # With no hidden layers the MLP is a pure affine map.
        m = MLP(2, (), 1)
        p = m.init_params(0)
        x = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = m.apply(p, x).data
        expected = x @ p[0]["W"] + p[0]["b"]
        np.testing.assert_allclose(out, expected)

    def test_tanh_bounded_hidden(self):
        m = MLP(1, (4,), 1)
        p = m.init_params(0)
        # Hidden activations bounded → output bounded by sum |w_out| + b.
        big = m.apply(p, np.array([[1e6]])).data
        bound = np.abs(p[1]["W"]).sum() + np.abs(p[1]["b"]).sum()
        assert np.abs(big) <= bound + 1e-12

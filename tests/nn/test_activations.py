"""Tests for activation triples (f, f', f'')."""

import numpy as np
import pytest

from repro.nn.activations import ACTIVATIONS, get_activation

Z = np.linspace(-2.0, 2.0, 41)
EPS = 1e-6


@pytest.mark.parametrize("name", sorted(ACTIVATIONS))
class TestDerivativeConsistency:
    def test_first_derivative(self, name):
        act = get_activation(name)
        fd = (act.f(Z + EPS).data - act.f(Z - EPS).data) / (2 * EPS)
        np.testing.assert_allclose(act.df(Z).data, fd, atol=1e-8)

    def test_second_derivative(self, name):
        act = get_activation(name)
        fd = (act.df(Z + EPS).data - act.df(Z - EPS).data) / (2 * EPS)
        np.testing.assert_allclose(act.d2f(Z).data, fd, atol=1e-7)


class TestSpecificValues:
    def test_tanh_at_zero(self):
        act = get_activation("tanh")
        assert act.f(np.array([0.0])).data[0] == 0.0
        assert act.df(np.array([0.0])).data[0] == 1.0
        assert act.d2f(np.array([0.0])).data[0] == 0.0

    def test_sigmoid_at_zero(self):
        act = get_activation("sigmoid")
        assert act.f(np.array([0.0])).data[0] == 0.5
        assert act.df(np.array([0.0])).data[0] == 0.25

    def test_unknown_raises_with_choices(self):
        with pytest.raises(KeyError, match="tanh"):
            get_activation("gelu")

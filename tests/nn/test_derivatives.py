"""Tests for analytic input-derivative propagation (the PINN workhorse)."""

import numpy as np
import pytest

from repro.autodiff import ops
from repro.nn.derivatives import mlp_forward, mlp_with_derivatives
from repro.nn.mlp import MLP
from repro.nn.pytree import tree_flatten, tree_unflatten, value_and_grad_tree

RNG = np.random.default_rng(11)


@pytest.fixture(scope="module")
def net():
    m = MLP(2, (12, 12), 2)
    return m, m.init_params(5)


def fd_input_derivatives(model, params, X, i, eps=1e-5):
    Xp, Xm = X.copy(), X.copy()
    Xp[:, i] += eps
    Xm[:, i] -= eps
    f = lambda pts: model.apply(params, pts).data
    d1 = (f(Xp) - f(Xm)) / (2 * eps)
    d2 = (f(Xp) - 2 * f(X) + f(Xm)) / eps**2
    return d1, d2


class TestValues:
    def test_value_matches_apply(self, net):
        m, p = net
        X = RNG.uniform(-1, 1, (6, 2))
        u, _, _ = mlp_with_derivatives(m, p, X)
        np.testing.assert_allclose(u.data, m.apply(p, X).data, rtol=1e-14)

    def test_mlp_forward_alias(self, net):
        m, p = net
        X = RNG.uniform(-1, 1, (4, 2))
        np.testing.assert_array_equal(
            mlp_forward(m, p, X).data, m.apply(p, X).data
        )

    def test_shapes(self, net):
        m, p = net
        X = RNG.uniform(-1, 1, (7, 2))
        u, du, d2u = mlp_with_derivatives(m, p, X)
        assert u.shape == (7, 2)
        assert len(du) == 2 and len(d2u) == 2
        assert all(d.shape == (7, 2) for d in du + d2u)

    def test_need_second_false_skips(self, net):
        m, p = net
        X = RNG.uniform(-1, 1, (3, 2))
        _, du, d2u = mlp_with_derivatives(m, p, X, need_second=False)
        assert len(du) == 2
        assert d2u == []

    def test_bad_input_shape_raises(self, net):
        m, p = net
        with pytest.raises(ValueError):
            mlp_with_derivatives(m, p, np.zeros((5, 3)))


class TestAgainstFiniteDifferences:
    @pytest.mark.parametrize("i", [0, 1])
    def test_first_derivatives(self, net, i):
        m, p = net
        X = RNG.uniform(-1, 1, (10, 2))
        _, du, _ = mlp_with_derivatives(m, p, X)
        fd1, _ = fd_input_derivatives(m, p, X, i)
        np.testing.assert_allclose(du[i].data, fd1, atol=1e-8)

    @pytest.mark.parametrize("i", [0, 1])
    def test_second_derivatives(self, net, i):
        m, p = net
        X = RNG.uniform(-1, 1, (10, 2))
        _, _, d2u = mlp_with_derivatives(m, p, X)
        _, fd2 = fd_input_derivatives(m, p, X, i)
        np.testing.assert_allclose(d2u[i].data, fd2, atol=5e-5)

    def test_laplacian_of_harmonic_combination(self):
        # A single linear layer (no activation) has zero second derivative.
        m = MLP(2, (), 1)
        p = m.init_params(0)
        X = RNG.uniform(-1, 1, (5, 2))
        _, _, d2u = mlp_with_derivatives(m, p, X)
        np.testing.assert_allclose(d2u[0].data, 0.0, atol=1e-14)
        np.testing.assert_allclose(d2u[1].data, 0.0, atol=1e-14)


class TestWeightGradients:
    def test_residual_loss_weight_gradient(self, net):
        """One reverse pass through derivative propagation == FD on weights."""
        m, p = net
        X = RNG.uniform(-1, 1, (8, 2))

        def loss(params):
            u, du, d2u = mlp_with_derivatives(m, params, X)
            lap = d2u[0] + d2u[1]
            return ops.mean(ops.square(lap)) + ops.mean(ops.square(du[0]))

        val, grads = value_and_grad_tree(loss)(p)
        leaves, td = tree_flatten(p)
        gleaves, _ = tree_flatten(grads)
        h = 1e-6
        for li, idx in [(0, (0, 0)), (2, (3, 1)), (4, (1, 0))]:
            lp = [np.array(x, copy=True) for x in leaves]
            lm = [np.array(x, copy=True) for x in leaves]
            lp[li][idx] += h
            lm[li][idx] -= h
            fp = float(loss(tree_unflatten(td, lp)).data)
            fm = float(loss(tree_unflatten(td, lm)).data)
            fd = (fp - fm) / (2 * h)
            assert abs(fd - gleaves[li][idx]) < 1e-6 * max(1.0, abs(fd))


class TestEnsembleDerivatives:
    """mlp_ensemble_with_derivatives: one vbatch trace over N parameter
    sets must reproduce every per-network result bitwise, and gradients
    must flow back to the stacked leaves."""

    N = 3

    @staticmethod
    def _stack(params_list):
        flats = [tree_flatten(p) for p in params_list]
        treedef = flats[0][1]
        leaves = [
            np.stack([np.asarray(f[0][i]) for f in flats])
            for i in range(len(flats[0][0]))
        ]
        return tree_unflatten(treedef, leaves), treedef

    def _nets(self, arch):
        in_dim, hidden, out_dim = arch
        m = MLP(in_dim, hidden, out_dim)
        params = [m.init_params(seed) for seed in range(self.N)]
        X = np.random.default_rng(23).uniform(-1, 1, (6, in_dim))
        return m, params, X

    @pytest.mark.parametrize(
        "arch",
        [(2, (12, 12), 2), (2, (8,), 1), (3, (5, 5), 4)],
        ids=["2-12-12-2", "2-8-1", "3-5-5-4"],
    )
    def test_slices_bitwise_match_per_network(self, arch):
        from repro.nn.derivatives import mlp_ensemble_with_derivatives

        m, params, X = self._nets(arch)
        stacked, _ = self._stack(params)
        u, du, d2u = mlp_ensemble_with_derivatives(m, stacked, X)
        assert u.shape == (self.N, X.shape[0], arch[2])
        for j in range(self.N):
            uj, duj, d2uj = mlp_with_derivatives(m, params[j], X)
            assert np.array_equal(u.data[j], uj.data), f"u slice {j}"
            for i in range(arch[0]):
                assert np.array_equal(du[i].data[j], duj[i].data)
                assert np.array_equal(d2u[i].data[j], d2uj[i].data)

    def test_need_second_false(self):
        from repro.nn.derivatives import mlp_ensemble_with_derivatives

        m, params, X = self._nets((2, (8,), 1))
        stacked, _ = self._stack(params)
        u, du, d2u = mlp_ensemble_with_derivatives(m, stacked, X, need_second=False)
        assert d2u == []
        assert len(du) == 2 and du[0].shape == (self.N, X.shape[0], 1)

    def test_gradients_match_per_network(self):
        from repro.nn.derivatives import mlp_ensemble_with_derivatives

        m, params, X = self._nets((2, (6, 6), 1))

        def loss_one(p):
            u, du, d2u = mlp_with_derivatives(m, p, X)
            return ops.mean(ops.square(d2u[0] + d2u[1])) + ops.mean(ops.square(u))

        stacked, treedef = self._stack(params)

        def loss_stacked(p):
            u, du, d2u = mlp_ensemble_with_derivatives(m, p, X)
            lap = d2u[0] + d2u[1]
            # Mean over everything except the ensemble axis, then sum:
            # gradient slice j == gradient of loss_one(params[j]).
            return ops.sum_(
                ops.mean(ops.square(lap), axis=(1, 2))
                + ops.mean(ops.square(u), axis=(1, 2))
            )

        _, grads = value_and_grad_tree(loss_stacked)(stacked)
        gstack, _ = tree_flatten(grads)
        for j in range(self.N):
            _, gj = value_and_grad_tree(loss_one)(params[j])
            for gs, g1 in zip(gstack, tree_flatten(gj)[0]):
                np.testing.assert_allclose(
                    np.asarray(gs)[j], np.asarray(g1), rtol=0, atol=1e-12
                )

"""Tests for SGD/Adam and gradient clipping."""

import numpy as np
import pytest

from repro.nn.optimizers import SGD, Adam, clip_grad_norm, global_grad_norm


def quad_grad(x, target):
    return 2.0 * (x - target)


class TestSGD:
    def test_single_step(self):
        opt = SGD(lr=0.1)
        p = {"w": np.array([1.0])}
        g = {"w": np.array([2.0])}
        p2, _ = opt.step(p, g, opt.init(p))
        np.testing.assert_allclose(p2["w"], [0.8])

    def test_momentum_accelerates(self):
        target = np.array([1.0])
        for mom, label in [(0.0, "plain"), (0.9, "momentum")]:
            opt = SGD(lr=0.01, momentum=mom)
            x = {"w": np.array([5.0])}
            st = opt.init(x)
            for _ in range(50):
                x, st = opt.step(x, {"w": quad_grad(x["w"], target)}, st)
            if mom == 0.0:
                plain_err = abs(x["w"][0] - 1.0)
            else:
                assert abs(x["w"][0] - 1.0) < plain_err

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)

    def test_lr_override(self):
        opt = SGD(lr=1.0)
        p2, _ = opt.step({"w": np.array([1.0])}, {"w": np.array([1.0])}, None, lr=0.5)
        np.testing.assert_allclose(p2["w"], [0.5])


class TestAdam:
    def test_converges_on_quadratic(self):
        opt = Adam(lr=0.1)
        x = np.array([4.0, -3.0])
        st = opt.init(x)
        for _ in range(400):
            x, st = opt.step(x, quad_grad(x, np.array([1.0, 2.0])), st)
        np.testing.assert_allclose(x, [1.0, 2.0], atol=1e-4)

    def test_first_step_size_is_lr(self):
        # With bias correction, the first Adam step has magnitude ≈ lr.
        opt = Adam(lr=0.05)
        x = np.array([0.0])
        st = opt.init(x)
        x2, _ = opt.step(x, np.array([123.0]), st)
        assert abs(abs(x2[0]) - 0.05) < 1e-6

    def test_scale_invariance(self):
        # Adam's step is (nearly) invariant to gradient scaling.
        opt = Adam(lr=0.1)
        for scale in (1.0, 1e6):
            x = np.array([0.0])
            st = opt.init(x)
            x, st = opt.step(x, np.array([scale]), st)
            assert abs(abs(x[0]) - 0.1) < 1e-3

    def test_state_counts_steps(self):
        opt = Adam(lr=0.1)
        x = np.array([0.0])
        st = opt.init(x)
        for i in range(3):
            x, st = opt.step(x, np.array([1.0]), st)
        assert st[0] == 3

    def test_pytree_params(self):
        opt = Adam(lr=0.1)
        params = [{"W": np.ones((2, 2)), "b": np.zeros(2)}]
        grads = [{"W": np.ones((2, 2)), "b": np.ones(2)}]
        st = opt.init(params)
        p2, _ = opt.step(params, grads, st)
        assert p2[0]["W"].shape == (2, 2)
        assert np.all(p2[0]["W"] < 1.0)

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            Adam(lr=-1.0)
        with pytest.raises(ValueError):
            Adam(beta1=1.0)


class TestClipping:
    def test_global_norm(self):
        g = {"a": np.array([3.0]), "b": np.array([4.0])}
        assert abs(global_grad_norm(g) - 5.0) < 1e-12

    def test_clip_rescales(self):
        g = {"a": np.array([3.0]), "b": np.array([4.0])}
        clipped = clip_grad_norm(g, 1.0)
        assert abs(global_grad_norm(clipped) - 1.0) < 1e-12

    def test_clip_noop_below_threshold(self):
        g = {"a": np.array([0.1])}
        assert clip_grad_norm(g, 1.0) is g

    def test_clip_zero_gradient(self):
        g = {"a": np.zeros(3)}
        out = clip_grad_norm(g, 1.0)
        np.testing.assert_array_equal(out["a"], np.zeros(3))

"""Tests for pytree utilities and the pytree gradient transform."""

import numpy as np
import pytest

from repro.autodiff import ops
from repro.nn.pytree import (
    grad_tree,
    tree_flatten,
    tree_leaves,
    tree_map,
    tree_unflatten,
    tree_zip_map,
    value_and_grad_tree,
)


class TestFlattenUnflatten:
    def test_roundtrip_nested(self):
        tree = {"a": [np.ones(2), np.zeros(3)], "b": (np.ones(1),)}
        leaves, treedef = tree_flatten(tree)
        rebuilt = tree_unflatten(treedef, leaves)
        assert set(rebuilt) == {"a", "b"}
        assert isinstance(rebuilt["a"], list)
        assert isinstance(rebuilt["b"], tuple)
        np.testing.assert_array_equal(rebuilt["a"][0], np.ones(2))

    def test_leaf_count(self):
        tree = [{"W": 1, "b": 2}, {"W": 3, "b": 4}]
        assert len(tree_leaves(tree)) == 4

    def test_dict_keys_sorted_deterministically(self):
        leaves1, _ = tree_flatten({"b": 2, "a": 1})
        leaves2, _ = tree_flatten({"a": 1, "b": 2})
        assert leaves1 == leaves2 == [1, 2]

    def test_scalar_is_leaf(self):
        leaves, td = tree_flatten(5.0)
        assert leaves == [5.0]
        assert tree_unflatten(td, [7.0]) == 7.0

    def test_too_many_leaves_raises(self):
        _, td = tree_flatten([1, 2])
        with pytest.raises(ValueError):
            tree_unflatten(td, [1, 2, 3])


class TestMaps:
    def test_tree_map(self):
        out = tree_map(lambda x: x * 2, {"a": 1, "b": [2, 3]})
        assert out == {"a": 2, "b": [4, 6]}

    def test_tree_zip_map(self):
        a = {"x": 1, "y": 2}
        b = {"x": 10, "y": 20}
        out = tree_zip_map(lambda u, v: u + v, a, b)
        assert out == {"x": 11, "y": 22}

    def test_zip_map_mismatched_structure_raises(self):
        with pytest.raises(ValueError):
            tree_zip_map(lambda u, v: u, [1, 2], [1, 2, 3])


class TestValueAndGradTree:
    def test_simple_quadratic(self):
        params = {"w": np.array([1.0, 2.0]), "b": np.array([0.5])}

        def loss(p):
            return ops.sum_(ops.square(p["w"])) + ops.sum_(p["b"])

        val, grads = value_and_grad_tree(loss)(params)
        assert val == 5.5
        np.testing.assert_allclose(grads["w"], [2.0, 4.0])
        np.testing.assert_allclose(grads["b"], [1.0])

    def test_extra_args_not_differentiated(self):
        def loss(p, data):
            return ops.sum_(p["w"] * data)

        _, grads = value_and_grad_tree(loss)(
            {"w": np.ones(3)}, np.array([1.0, 2.0, 3.0])
        )
        np.testing.assert_allclose(grads["w"], [1.0, 2.0, 3.0])

    def test_unused_leaf_gets_zeros(self):
        def loss(p):
            return ops.sum_(p["used"])

        _, grads = value_and_grad_tree(loss)(
            {"used": np.ones(2), "unused": np.ones(3)}
        )
        np.testing.assert_allclose(grads["unused"], np.zeros(3))

    def test_non_scalar_raises(self):
        with pytest.raises(ValueError, match="scalar"):
            value_and_grad_tree(lambda p: p["w"] * 2)({"w": np.ones(2)})

    def test_grad_tree_shortcut(self):
        g = grad_tree(lambda p: ops.sum_(ops.square(p[0])))([np.array([3.0])])
        np.testing.assert_allclose(g[0], [6.0])

    def test_nested_layer_structure(self):
        # Structure like MLP params: list of dicts.
        params = [
            {"W": np.ones((2, 2)), "b": np.zeros(2)},
            {"W": np.ones((2, 1)), "b": np.zeros(1)},
        ]

        def loss(p):
            h = ops.matmul(np.ones((1, 2)), p[0]["W"]) + p[0]["b"]
            out = ops.matmul(h, p[1]["W"]) + p[1]["b"]
            return ops.sum_(out)

        val, grads = value_and_grad_tree(loss)(params)
        assert val == 4.0
        assert grads[0]["W"].shape == (2, 2)
        assert grads[1]["b"].shape == (1,)

"""Tests for learning-rate schedules (the paper's ÷10 at 50 %, 75 %)."""

import pytest

from repro.nn.schedules import (
    ConstantSchedule,
    PiecewiseConstantSchedule,
    paper_schedule,
)


class TestConstant:
    def test_value(self):
        s = ConstantSchedule(0.01)
        assert s(0, 100) == 0.01
        assert s(99, 100) == 0.01


class TestPiecewise:
    def test_paper_schedule_values(self):
        s = paper_schedule(1e-2)
        assert s(0, 100) == pytest.approx(1e-2)
        assert s(49, 100) == pytest.approx(1e-2)
        assert s(50, 100) == pytest.approx(1e-3)
        assert s(74, 100) == pytest.approx(1e-3)
        assert s(75, 100) == pytest.approx(1e-4)
        assert s(99, 100) == pytest.approx(1e-4)

    def test_milestones_sorted_internally(self):
        s = PiecewiseConstantSchedule(1.0, {0.75: 0.01, 0.5: 0.1})
        assert s(60, 100) == pytest.approx(0.1)
        assert s(80, 100) == pytest.approx(0.01)

    def test_monotone_nonincreasing(self):
        s = paper_schedule(1.0)
        rates = [s(i, 200) for i in range(200)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_invalid_base_lr(self):
        with pytest.raises(ValueError):
            PiecewiseConstantSchedule(0.0, {0.5: 0.1})

    def test_invalid_milestone_fraction(self):
        with pytest.raises(ValueError):
            PiecewiseConstantSchedule(1.0, {1.5: 0.1})

    def test_invalid_total(self):
        s = paper_schedule(1.0)
        with pytest.raises(ValueError):
            s(0, 0)

"""Tests for learning-rate schedules (the paper's ÷10 at 50 %, 75 %)."""

import pytest

from repro.nn.schedules import (
    ConstantSchedule,
    PiecewiseConstantSchedule,
    paper_schedule,
)


class TestConstant:
    def test_value(self):
        s = ConstantSchedule(0.01)
        assert s(0, 100) == 0.01
        assert s(99, 100) == 0.01


class TestPiecewise:
    def test_paper_schedule_values(self):
        s = paper_schedule(1e-2)
        assert s(0, 100) == pytest.approx(1e-2)
        assert s(49, 100) == pytest.approx(1e-2)
        assert s(50, 100) == pytest.approx(1e-3)
        assert s(74, 100) == pytest.approx(1e-3)
        assert s(75, 100) == pytest.approx(1e-4)
        assert s(99, 100) == pytest.approx(1e-4)

    def test_milestones_sorted_internally(self):
        s = PiecewiseConstantSchedule(1.0, {0.75: 0.01, 0.5: 0.1})
        assert s(60, 100) == pytest.approx(0.1)
        assert s(80, 100) == pytest.approx(0.01)

    def test_monotone_nonincreasing(self):
        s = paper_schedule(1.0)
        rates = [s(i, 200) for i in range(200)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_invalid_base_lr(self):
        with pytest.raises(ValueError):
            PiecewiseConstantSchedule(0.0, {0.5: 0.1})

    def test_invalid_milestone_fraction(self):
        with pytest.raises(ValueError):
            PiecewiseConstantSchedule(1.0, {1.5: 0.1})

    def test_invalid_total(self):
        s = paper_schedule(1.0)
        with pytest.raises(ValueError):
            s(0, 0)

    def test_invalid_step(self):
        s = paper_schedule(1.0)
        with pytest.raises(ValueError):
            s(-1, 100)


class TestBoundarySemantics:
    """Pin the milestone-firing rule: the first step with step/total >= m,
    evaluated exactly (integer arithmetic, no float-division rounding)."""

    def test_total_one_runs_at_base_rate(self):
        s = paper_schedule(1e-2)
        assert s(0, 1) == pytest.approx(1e-2)

    def test_total_two(self):
        s = paper_schedule(1e-2)
        assert s(0, 2) == pytest.approx(1e-2)
        assert s(1, 2) == pytest.approx(1e-3)  # 50 % fires; 75 % never does

    def test_odd_total_three(self):
        s = paper_schedule(1e-2)
        # 50 % fires at ceil(1.5) = 2; 75 % at ceil(2.25) = 3, out of range.
        assert [s(i, 3) for i in range(3)] == pytest.approx([1e-2, 1e-2, 1e-3])

    def test_odd_total_five(self):
        s = paper_schedule(1.0)
        # Thresholds: ceil(2.5) = 3 and ceil(3.75) = 4.
        assert [s(i, 5) for i in range(5)] == pytest.approx(
            [1.0, 1.0, 1.0, 0.1, 0.01]
        )

    def test_odd_total_101(self):
        s = paper_schedule(1.0)
        assert s(50, 101) == pytest.approx(1.0)   # 50/101 < 0.5
        assert s(51, 101) == pytest.approx(0.1)   # ceil(50.5) = 51
        assert s(75, 101) == pytest.approx(0.1)   # 75/101 < 0.75
        assert s(76, 101) == pytest.approx(0.01)  # ceil(75.75) = 76

    def test_exact_milestone_step_fires(self):
        # 0.75 is binary-exact: step 6 of 8 is exactly 75 % and must fire.
        s = PiecewiseConstantSchedule(1.0, {0.75: 0.5})
        assert s(5, 8) == pytest.approx(1.0)
        assert s(6, 8) == pytest.approx(0.5)

    def test_no_float_rounding_flips(self):
        # The firing step equals ceil(m * total) under exact rational
        # arithmetic for every milestone/total pair, including pairs where
        # float division of step/total would round unpredictably.
        from fractions import Fraction

        for m in (0.1, 0.3, 1 / 3, 0.5, 0.7, 0.75, 0.9):
            s = PiecewiseConstantSchedule(1.0, {m: 0.5})
            for total in (1, 2, 3, 7, 10, 49, 100, 490):
                exact = Fraction(m)  # exact value of the stored double
                expected_first = -(-exact.numerator * total // exact.denominator)
                fired = [i for i in range(total) if s(i, total) == 0.5]
                first = fired[0] if fired else total
                assert first == min(expected_first, total), (m, total)

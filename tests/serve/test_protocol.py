"""Request validation, digesting, and coalesce keys."""

from __future__ import annotations

import pytest

from repro.serve.protocol import (
    MAX_ITERATIONS,
    MAX_NX,
    ControlRequest,
    RequestError,
    coalesce_key,
    parse_request,
    request_digest,
)


def _solve(**over):
    base = {"family": "laplace", "kind": "solve", "method": "dp",
            "iterations": 5}
    base.update(over)
    return base


def _evaluate(**over):
    base = {"family": "laplace", "kind": "evaluate", "control": [0.0] * 3}
    base.update(over)
    return base


class TestValidation:
    def test_minimal_solve_parses_with_defaults(self):
        req = parse_request(_solve())
        assert isinstance(req, ControlRequest)
        assert (req.family, req.kind, req.method) == ("laplace", "solve", "dp")
        assert req.nx == 26 and req.ny == 0  # ny is ns-only
        assert req.lr > 0

    def test_minimal_evaluate_parses(self):
        req = parse_request(_evaluate())
        assert req.kind == "evaluate"
        assert req.control == (0.0, 0.0, 0.0)
        # Evaluation never optimises: method/iterations are forced.
        assert req.method == "dp" and req.iterations == 0

    @pytest.mark.parametrize("mutation, message", [
        ({"family": "heat"}, "family"),
        ({"kind": "train"}, "kind"),
        ({"method": "sgd"}, "method"),
        ({"bogus": 1}, "bogus"),
        ({"nx": 0}, "nx"),
        ({"nx": MAX_NX + 1}, "nx"),
        ({"iterations": MAX_ITERATIONS + 1}, "iterations"),
        ({"iterations": -1}, "iterations"),
        ({"lr": 0.0}, "lr"),
        ({"lr": float("nan")}, "lr"),
        ({"seed": "abc"}, "seed"),
    ])
    def test_bad_fields_rejected(self, mutation, message):
        with pytest.raises(RequestError, match=message):
            parse_request(_solve(**mutation))

    def test_not_an_object_rejected(self):
        with pytest.raises(RequestError):
            parse_request([1, 2, 3])

    def test_ns_pinn_rejected(self):
        with pytest.raises(RequestError, match="pinn"):
            parse_request(_solve(family="ns", method="pinn"))

    def test_target_is_laplace_only(self):
        with pytest.raises(RequestError, match="target"):
            parse_request(_solve(family="ns", target=[0.1, 0.2]))

    def test_evaluate_requires_control(self):
        with pytest.raises(RequestError, match="control"):
            parse_request({"family": "laplace", "kind": "evaluate"})

    def test_solve_rejects_control(self):
        with pytest.raises(RequestError, match="control"):
            parse_request(_solve(control=[0.0]))

    def test_control_must_be_finite_numbers(self):
        with pytest.raises(RequestError, match="control"):
            parse_request(_evaluate(control=[0.0, float("inf")]))
        with pytest.raises(RequestError, match="control"):
            parse_request(_evaluate(control=["a", "b"]))


class TestDigest:
    def test_digest_is_stable_and_prefixed(self):
        a = request_digest(parse_request(_solve()))
        b = request_digest(parse_request(_solve()))
        assert a == b
        assert a.startswith("sha256:")

    def test_digest_covers_every_field(self):
        base = request_digest(parse_request(_solve()))
        assert request_digest(parse_request(_solve(iterations=6))) != base
        assert request_digest(parse_request(_solve(seed=1))) != base
        assert request_digest(parse_request(_solve(lr=2e-2))) != base

    def test_digest_ignores_input_key_order(self):
        spec = _solve(tolerance=1e-6)
        reordered = dict(reversed(list(spec.items())))
        assert (request_digest(parse_request(spec))
                == request_digest(parse_request(reordered)))


class TestCoalesceKey:
    def test_same_shape_same_key_despite_targets(self):
        a = parse_request(_evaluate())
        b = parse_request(_evaluate(control=[1.0, 2.0, 3.0],
                                    target=[0.5] * 26))
        # Targets differ but only affect the post-solve mismatch — the
        # requests may still share one factorised multi-RHS solve.
        assert coalesce_key(a) == coalesce_key(b)

    def test_different_shape_different_key(self):
        a = parse_request(_evaluate())
        b = parse_request(_evaluate(nx=30))
        assert coalesce_key(a) != coalesce_key(b)

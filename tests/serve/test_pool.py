"""The warm worker pool: typed failures, replacement, clean shutdown."""

from __future__ import annotations

import pytest

from repro.serve.pool import ServeWorker, WarmPool


@pytest.fixture()
def worker():
    w = ServeWorker(worker_id=0, root_seed=0)
    yield w
    w.shutdown()


def test_ping_round_trip(worker):
    reply = worker.call({"op": "ping"}, timeout=30.0)
    assert reply["ok"]
    assert reply["result"]["pid"] != 0
    assert reply["result"]["pid"] != __import__("os").getpid()


def test_crash_mid_request_is_typed_not_raised(worker):
    reply = worker.call({"op": "crash"}, timeout=30.0)
    assert not reply["ok"]
    assert reply["error"]["type"] == "WorkerCrashed"
    worker.process.join(timeout=5.0)  # reap before asserting liveness
    assert not worker.alive()
    # A dead worker keeps answering with the typed error, never raising.
    again = worker.call({"op": "ping"}, timeout=5.0)
    assert again["error"]["type"] == "WorkerCrashed"


def test_deadline_overrun_is_typed_timeout(worker):
    reply = worker.call({"op": "sleep", "seconds": 30.0}, timeout=0.2)
    assert not reply["ok"]
    assert reply["error"]["type"] == "RequestTimeout"


class TestWarmPool:
    def test_pool_boots_distinct_workers(self):
        pool = WarmPool(size=2, root_seed=0)
        try:
            pids = {
                w.call({"op": "ping"}, timeout=30.0)["result"]["pid"]
                for w in pool.workers
            }
            assert len(pids) == 2
        finally:
            pool.shutdown()

    def test_replace_swaps_in_a_live_worker(self):
        pool = WarmPool(size=1, root_seed=0)
        try:
            dead = pool.workers[0]
            dead.call({"op": "crash"}, timeout=30.0)
            dead.process.join(timeout=5.0)  # reap before asserting liveness
            assert not dead.alive()
            fresh = pool.replace(dead)
            assert fresh is pool.workers[0] and fresh is not dead
            assert pool.replacements == 1
            reply = fresh.call({"op": "ping"}, timeout=30.0)
            assert reply["ok"]
        finally:
            pool.shutdown()

    def test_shutdown_reaps_all_processes(self):
        pool = WarmPool(size=2, root_seed=0)
        workers = list(pool.workers)
        pool.shutdown()
        assert all(not w.alive() for w in workers)

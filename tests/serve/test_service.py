"""End-to-end service tests over real HTTP: happy paths and failure modes."""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.serve.client import ServeClient, ServeHTTPError
from repro.serve.runner import ServiceThread
from repro.serve.service import ServeConfig

SOLVE = {"family": "laplace", "kind": "solve", "method": "dp",
         "iterations": 4}

#: A solve slow enough (several seconds) to still be in flight when a
#: test kills its worker, times it out, or disconnects its client.
SLOW_SOLVE = {"family": "laplace", "kind": "solve", "method": "dal",
              "iterations": 2000, "nx": 40}


def _evaluate(values):
    return {"family": "laplace", "kind": "evaluate", "control": list(values)}


def _wait_until(predicate, timeout=10.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ---------------------------------------------------------------------------
# Shared happy-path service (booting a pool is the expensive part)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def service(tmp_path_factory):
    config = ServeConfig(
        workers=2,
        store_dir=str(tmp_path_factory.mktemp("serve-store")),
        coalesce_window_s=0.05,
    )
    with ServiceThread(config) as svc:
        yield svc


@pytest.fixture(scope="module")
def client(service):
    return ServeClient(service.host, service.port, timeout=120.0)


@pytest.fixture(scope="module")
def n_control():
    from repro.serve.worker import WorkerState

    return WorkerState(0).problem("laplace", 26, 11).n_control


def test_healthz(client):
    doc = client.healthz()
    assert doc["status"] == "ok"
    assert doc["workers"] == 2


def test_solve_round_trip_matches_direct_execution(client):
    doc = client.control(**SOLVE)
    from repro.serve.protocol import parse_request, request_digest
    from repro.serve.worker import WorkerState, execute_job

    request = parse_request(SOLVE)
    reply = execute_job(WorkerState(0), {
        "op": "solve", "request": request,
        "digest": request_digest(request),
    })
    assert doc["result"]["final_cost"] == pytest.approx(
        reply["result"]["final_cost"], rel=1e-9
    )
    assert doc["digest"] == request_digest(request)


def test_resubmit_is_bitwise_store_hit(client):
    request = dict(SOLVE, iterations=5)
    status1, headers1, body1 = client.post_control_raw(request)
    status2, headers2, body2 = client.post_control_raw(request)
    assert status1 == status2 == 200
    assert headers1["x-repro-store"] == "miss"
    assert headers2["x-repro-store"] == "hit"
    assert body1 == body2  # byte-identical, straight from disk


def test_equivalent_spellings_share_one_digest(client):
    # Defaults resolve before digesting: spelling them out is the same
    # request, so the second submission must be a store hit.
    implicit = {"family": "laplace", "kind": "solve", "method": "dp",
                "iterations": 7}
    explicit = dict(implicit, nx=26, seed=0, lr=1e-2)
    _, h1, b1 = client.post_control_raw(implicit)
    _, h2, b2 = client.post_control_raw(explicit)
    assert h2["x-repro-store"] == "hit"
    assert b1 == b2


def test_invalid_request_is_typed_400(client):
    with pytest.raises(ServeHTTPError) as err:
        client.control(family="laplace", kind="solve", method="sgd")
    assert err.value.status == 400
    assert err.value.error["type"] == "RequestError"


def test_worker_level_reject_is_typed_400(client):
    with pytest.raises(ServeHTTPError) as err:
        client.control(**dict(SOLVE, target=[0.5, 0.5]))
    assert err.value.status == 400
    assert "target" in err.value.error["message"]


def test_unknown_route_404_and_wrong_method_405(client):
    status, _, _ = client.request_raw("GET", "/v2/nothing")
    assert status == 404
    status, _, _ = client.request_raw("GET", "/v1/control")
    assert status == 405


def test_concurrent_evaluates_coalesce(client, n_control):
    before = client.metrics()["metrics"]

    def width(doc):
        return (doc.get("serve.coalesce.requests", {}).get("value", 0.0),
                doc.get("serve.coalesce.batches", {}).get("value", 0.0))

    results = [None] * 4
    barrier = threading.Barrier(4)

    def post(i):
        barrier.wait()
        results[i] = client.control(**_evaluate(
            [0.02 * (i + 1)] * n_control
        ))

    threads = [threading.Thread(target=post, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(r is not None for r in results)
    costs = [r["result"]["cost"] for r in results]
    assert len(set(costs)) == len(costs)  # each got its own column

    after = client.metrics()["metrics"]
    d_requests = width(after)[0] - width(before)[0]
    d_batches = width(after)[1] - width(before)[1]
    assert d_requests == 4
    assert 1 <= d_batches < 4  # at least one multi-RHS batch


def test_metrics_exposes_cache_and_latency(client):
    doc = client.metrics()
    lat = doc["latency"]
    assert lat["count"] > 0
    assert lat["p50_s"] <= lat["p95_s"] <= lat["p99_s"]
    metrics = doc["metrics"]
    # Cross-request warm caches: the workers have replayed compiled
    # programs and reused factorisations across the tests above.
    assert metrics["cache.compiled-replay.hits"]["value"] > 0
    assert metrics["cache.lu-cache.hits"]["value"] > 0
    assert doc["store"]["hits"] >= 1


# ---------------------------------------------------------------------------
# Failure modes (each gets its own small service)
# ---------------------------------------------------------------------------
def test_backpressure_returns_429():
    config = ServeConfig(workers=1, queue_limit=1, coalesce_window_s=0.5)
    with ServiceThread(config) as svc:
        client = ServeClient(svc.host, svc.port, timeout=30.0)
        n_control = 24  # wrong length is fine: it still occupies the window
        first = {}

        def occupant():
            try:
                first["doc"] = client.control(**_evaluate([0.0] * n_control))
            except ServeHTTPError as exc:
                first["doc"] = exc.error

        t = threading.Thread(target=occupant)
        t.start()
        # While the occupant sits in the coalesce window the queue is
        # full; a second request must bounce with 429 immediately.
        assert _wait_until(
            lambda: svc.service._inflight >= 1, timeout=5.0
        )
        with pytest.raises(ServeHTTPError) as err:
            client.control(**SOLVE)
        assert err.value.status == 429
        assert err.value.error["type"] == "Backpressure"
        t.join()
        assert "doc" in first  # the occupant itself was served
        rejected = client.metrics()["metrics"]["serve.rejected"]["value"]
        assert rejected >= 1


def test_worker_timeout_is_504_and_worker_is_replaced():
    # The deadline must sit between a cold default solve (~0.4s: problem
    # build + compile + 4 iterations) and SLOW_SOLVE (~8s).
    config = ServeConfig(workers=1, request_timeout_s=2.0)
    with ServiceThread(config) as svc:
        client = ServeClient(svc.host, svc.port, timeout=30.0)
        with pytest.raises(ServeHTTPError) as err:
            client.control(**SLOW_SOLVE)
        assert err.value.status == 504
        assert err.value.error["type"] == "RequestTimeout"
        doc = client.metrics()
        assert doc["pool"]["replacements"] == 1
        assert doc["metrics"]["serve.worker.timeouts"]["value"] == 1
        # The replacement worker serves the next request normally.
        assert client.control(**SOLVE)["result"]["final_cost"] >= 0.0


def test_worker_crash_is_typed_500_and_worker_is_replaced():
    config = ServeConfig(workers=1)
    with ServiceThread(config) as svc:
        client = ServeClient(svc.host, svc.port, timeout=60.0)
        caught = {}

        def slow():
            try:
                caught["doc"] = client.control(**SLOW_SOLVE)
            except ServeHTTPError as exc:
                caught["status"] = exc.status
                caught["error"] = exc.error

        t = threading.Thread(target=slow)
        t.start()
        assert _wait_until(lambda: svc.service._inflight >= 1, timeout=5.0)
        time.sleep(0.2)  # let the job reach the worker
        svc.service.pool.workers[0].process.kill()
        t.join(timeout=30.0)
        assert caught.get("status") == 500
        assert caught["error"]["type"] == "WorkerCrashed"
        doc = client.metrics()
        assert doc["pool"]["replacements"] == 1
        assert doc["metrics"]["serve.worker.crashes"]["value"] == 1
        assert client.control(**SOLVE)["result"]["final_cost"] >= 0.0


def test_client_disconnect_frees_the_slot():
    config = ServeConfig(workers=1, queue_limit=4)
    with ServiceThread(config) as svc:
        body = json.dumps(SLOW_SOLVE).encode("utf-8")
        head = (
            f"POST /v1/control HTTP/1.1\r\nHost: x\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode("latin-1")
        sock = socket.create_connection((svc.host, svc.port), timeout=10.0)
        sock.sendall(head + body)
        assert _wait_until(lambda: svc.service._inflight >= 1, timeout=5.0)
        sock.close()  # walk away mid-request

        client = ServeClient(svc.host, svc.port, timeout=60.0)
        assert _wait_until(
            lambda: client.metrics()["metrics"].get(
                "serve.client.disconnects", {}
            ).get("value", 0.0) >= 1,
            timeout=10.0,
        )
        # The admission slot came back and the worker returns to
        # rotation once its in-flight job settles; a new request works.
        assert _wait_until(lambda: svc.service._inflight == 0, timeout=10.0)
        assert client.control(**SOLVE)["result"]["final_cost"] >= 0.0

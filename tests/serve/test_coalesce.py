"""The micro-batch coalescer: window, width trigger, failure fan-out."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.coalesce import Coalescer


def run(coro):
    return asyncio.run(coro)


def make_flush(log):
    async def flush(requests):
        log.append(list(requests))
        return [{"echo": r} for r in requests]

    return flush


def test_window_batches_concurrent_submits():
    log = []

    async def scenario():
        co = Coalescer(make_flush(log), window_s=0.05, max_width=16)
        return await asyncio.gather(
            co.submit(("k",), "a"), co.submit(("k",), "b"),
            co.submit(("k",), "c"),
        )

    results = run(scenario())
    assert [r["echo"] for r in results] == ["a", "b", "c"]
    assert log == [["a", "b", "c"]]  # one batch, positionally aligned


def test_width_trigger_fires_before_window():
    log = []

    async def scenario():
        co = Coalescer(make_flush(log), window_s=60.0, max_width=2)
        return await asyncio.gather(co.submit(("k",), 1), co.submit(("k",), 2))

    # window_s=60 would hang the test if the width trigger didn't fire.
    results = run(asyncio.wait_for(scenario(), timeout=5.0))
    assert [r["echo"] for r in results] == [1, 2]
    assert log == [[1, 2]]


def test_distinct_keys_never_mix():
    log = []

    async def scenario():
        co = Coalescer(make_flush(log), window_s=0.02)
        return await asyncio.gather(
            co.submit(("k1",), "a"), co.submit(("k2",), "b")
        )

    run(scenario())
    assert sorted(map(tuple, log)) == [("a",), ("b",)]


def test_flush_failure_reaches_every_waiter():
    async def flush(requests):
        raise RuntimeError("solver exploded")

    async def scenario():
        co = Coalescer(flush, window_s=0.01)
        results = await asyncio.gather(
            co.submit(("k",), 1), co.submit(("k",), 2),
            return_exceptions=True,
        )
        return results

    results = run(scenario())
    assert all(isinstance(r, RuntimeError) for r in results)


def test_cancelled_member_is_dropped_not_flushed():
    log = []

    async def scenario():
        co = Coalescer(make_flush(log), window_s=0.05)
        t1 = asyncio.ensure_future(co.submit(("k",), "keep"))
        t2 = asyncio.ensure_future(co.submit(("k",), "gone"))
        await asyncio.sleep(0)  # both joined the bucket
        t2.cancel()
        result = await t1
        with pytest.raises(asyncio.CancelledError):
            await t2
        return result

    result = run(scenario())
    assert result["echo"] == "keep"
    assert log == [["keep"]]  # the cancelled request never ran


def test_drain_flushes_open_buckets():
    log = []

    async def scenario():
        co = Coalescer(make_flush(log), window_s=60.0)
        task = asyncio.ensure_future(co.submit(("k",), "x"))
        await asyncio.sleep(0)
        await co.drain()
        return await task

    result = run(asyncio.wait_for(scenario(), timeout=5.0))
    assert result["echo"] == "x"
    assert log == [["x"]]


def test_counters_track_batches_and_widths():
    log = []

    async def scenario():
        co = Coalescer(make_flush(log), window_s=0.02, max_width=2)
        await asyncio.gather(*[co.submit(("k",), i) for i in range(4)])
        return co

    co = run(scenario())
    assert co.batches == 2
    assert sorted(co.widths) == [2, 2]

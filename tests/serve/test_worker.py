"""Warm-worker job execution: caches, coalesced evaluation, typed errors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.protocol import parse_request, request_digest
from repro.serve.worker import WorkerState, execute_job


@pytest.fixture(scope="module")
def state():
    """One warm worker state shared by the module (caches persist)."""
    return WorkerState(root_seed=0)


def _job_solve(**over):
    spec = {"family": "laplace", "kind": "solve", "method": "dp",
            "iterations": 4}
    spec.update(over)
    req = parse_request(spec)
    return {"op": "solve", "request": req, "digest": request_digest(req)}


def _job_evaluate(controls, **over):
    requests = []
    for c in controls:
        spec = {"family": "laplace", "kind": "evaluate", "control": list(c)}
        spec.update(over)
        requests.append(parse_request(spec))
    return {"op": "evaluate", "requests": requests}


@pytest.fixture(scope="module")
def n_control(state):
    return state.problem("laplace", 26, 11).n_control


def test_solve_returns_cost_and_control(state, n_control):
    reply = execute_job(state, _job_solve())
    assert reply["ok"], reply
    result = reply["result"]
    assert result["kind"] == "solve"
    assert np.isfinite(result["final_cost"])
    assert len(result["control"]) == n_control
    assert result["converged"] is None  # no tolerance given


def test_solve_repeat_replays_compiled_program(state):
    before = state.cache_obs()["compiled-replay"]
    reply = execute_job(state, _job_solve(iterations=3, lr=2e-2))
    assert reply["ok"]
    after = state.cache_obs()["compiled-replay"]
    # Same oracle key as the previous solve: zero new traces, only replays.
    assert after["misses"] == before["misses"]
    assert after["hits"] > before["hits"]


def test_coalesced_evaluate_matches_individual(state, n_control):
    rng = np.random.default_rng(7)
    controls = rng.normal(scale=0.2, size=(4, n_control))
    batched = execute_job(state, _job_evaluate(controls))
    assert batched["ok"]
    costs = [r["cost"] for r in batched["results"]]
    for c, batched_cost in zip(controls, costs):
        single = execute_job(state, _job_evaluate([c]))
        assert single["results"][0]["cost"] == pytest.approx(
            batched_cost, rel=1e-12
        )


def test_batch_shares_one_factorisation(state, n_control):
    before = state.cache_obs()["lu-cache"]
    reply = execute_job(
        state, _job_evaluate(np.zeros((5, n_control)) + 0.1)
    )
    assert reply["ok"]
    after = state.cache_obs()["lu-cache"]
    assert after["misses"] == before["misses"]  # no new factorisation
    assert after["hits"] > before["hits"]


def test_per_item_length_error_does_not_poison_batch(state, n_control):
    good = [0.0] * n_control
    bad = [0.0] * (n_control + 1)
    reply = execute_job(state, _job_evaluate([good, bad, good]))
    assert reply["ok"]
    ok0, err, ok2 = reply["results"]
    assert "cost" in ok0 and "cost" in ok2
    assert err["error"]["type"] == "RequestError"
    assert "control" in err["error"]["message"]


def test_wrong_target_length_is_typed_request_error(state):
    spec = {"family": "laplace", "kind": "solve", "method": "dp",
            "iterations": 1, "target": [0.5, 0.5]}
    req = parse_request(spec)
    reply = execute_job(state, {"op": "solve", "request": req,
                                "digest": request_digest(req)})
    assert not reply["ok"]
    assert reply["error"]["type"] == "RequestError"
    assert "target" in reply["error"]["message"]


def test_unknown_op_is_typed_request_error(state):
    reply = execute_job(state, {"op": "meditate"})
    assert not reply["ok"]
    assert reply["error"]["type"] == "RequestError"


def test_internal_errors_never_escape(state):
    # A malformed job (missing keys) must come back as a typed error,
    # not an exception through the pipe.
    reply = execute_job(state, {"op": "solve"})
    assert not reply["ok"]
    assert reply["error"]["type"] == "InternalError"
    assert "traceback" in reply["error"]


def test_tolerance_sets_converged_flag(state, n_control):
    loose = execute_job(
        state, _job_evaluate([[0.0] * n_control], tolerance=1e6)
    )
    assert loose["results"][0]["converged"] is True
    tight = execute_job(
        state, _job_evaluate([[0.0] * n_control], tolerance=1e-300)
    )
    assert tight["results"][0]["converged"] is False

"""Disk-backed result store: bitwise idempotency and counters."""

from __future__ import annotations

import os

from repro.serve.store import ResultStore

DIGEST = "sha256:0123456789abcdef"


def test_miss_then_bitwise_hit(tmp_path):
    store = ResultStore(str(tmp_path))
    assert store.get(DIGEST) is None
    payload = b'{"digest":"sha256:0123456789abcdef","result":{"cost":0.25}}'
    store.put(DIGEST, payload)
    assert store.get(DIGEST) == payload  # exact bytes, not a re-encode
    assert store.hits == 1 and store.misses == 1


def test_put_is_idempotent_and_atomic(tmp_path):
    store = ResultStore(str(tmp_path))
    store.put(DIGEST, b"first")
    store.put(DIGEST, b"first")
    assert store.get(DIGEST) == b"first"
    assert len(store) == 1
    # No stray temp files left behind by the write-then-rename protocol.
    leftovers = [f for f in os.listdir(tmp_path) if not f.endswith(".json")]
    assert leftovers == []


def test_contains_and_len(tmp_path):
    store = ResultStore(str(tmp_path))
    assert DIGEST not in store and len(store) == 0
    store.put(DIGEST, b"x")
    assert DIGEST in store and len(store) == 1


def test_reopen_sees_persisted_results(tmp_path):
    ResultStore(str(tmp_path)).put(DIGEST, b"persisted")
    fresh = ResultStore(str(tmp_path))
    assert fresh.get(DIGEST) == b"persisted"

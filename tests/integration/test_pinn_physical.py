"""Integration: the PINN's surrogate-vs-physics gap (Fig. 1 caption).

"PINN achieves good control at the expense of first principles" — the
surrogate's claimed cost and the cost of its control re-simulated with
the reference RBF solver differ, while DP's claimed and physical costs
coincide by construction.
"""

import numpy as np
import pytest

from repro.control.dp import NavierStokesDP
from repro.control.loop import optimize
from repro.control.pinn import NavierStokesPINN, PINNTrainConfig
from repro.pde.navier_stokes import NSConfig

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def trained(channel_problem):
    cfg = PINNTrainConfig(epochs=400, lr=2e-3, n_interior=150, n_boundary=15)
    pinn = NavierStokesPINN(
        channel_problem,
        ns_config=NSConfig(reynolds=100.0, refinements=6, pseudo_dt=0.5),
        state_hidden=(24, 24),
        control_hidden=(8,),
        config=cfg,
    )
    run = pinn.train_pair(omega=1.0)
    return pinn, run


class TestSurrogateVsPhysics:
    def test_surrogate_and_physical_costs_differ(self, trained):
        pinn, run = trained
        j_surrogate = float(pinn.cost_objective(run.params_u).data)
        j_physical = pinn.evaluate_cost_physical(run.params_c)
        # Both finite, but not the same number — the surrogate is not a
        # physics-exact simulator.
        assert np.isfinite(j_surrogate) and np.isfinite(j_physical)
        assert abs(j_surrogate - j_physical) > 1e-6

    def test_dp_claimed_cost_is_physical(self, channel_problem):
        cfg = NSConfig(reynolds=100.0, refinements=6, pseudo_dt=0.5)
        dp = NavierStokesDP(channel_problem, cfg)
        c, hist = optimize(dp, n_iterations=10, initial_lr=1e-1)
        st = channel_problem.solve(c, cfg)
        assert channel_problem.cost(st.u, st.v) == pytest.approx(
            dp.value(c), rel=1e-12
        )

    def test_pinn_residual_nonzero_after_training(self, trained):
        """The soft-constraint residual never reaches zero — the
        'variational crime' the paper's §1 discusses."""
        pinn, run = trained
        assert run.residual_history[-1] > 0.0

"""End-to-end Navier–Stokes control: the Fig. 4 comparisons at reduced
scale — including the paper's headline DAL failure at Re = 100."""

import numpy as np
import pytest

from repro.cloud.channel import ChannelCloud
from repro.control.dal import NavierStokesDAL
from repro.control.dp import NavierStokesDP
from repro.control.loop import optimize
from repro.pde.navier_stokes import ChannelFlowProblem, NSConfig

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def problem():
    return ChannelFlowProblem(cloud=ChannelCloud(21, 11), perturbation=0.3)


@pytest.fixture(scope="module")
def dp_run(problem):
    cfg = NSConfig(reynolds=100.0, refinements=8, pseudo_dt=0.5)
    return optimize(NavierStokesDP(problem, cfg), n_iterations=60, initial_lr=1e-1)


@pytest.fixture(scope="module")
def dal_run_re100(problem):
    cfg = NSConfig(reynolds=100.0, refinements=3, pseudo_dt=0.5)
    dal = NavierStokesDAL(problem, cfg, adjoint_refinements=30)
    return optimize(dal, n_iterations=60, initial_lr=1e-1)


@pytest.fixture(scope="module")
def dal_run_re10(problem):
    cfg = NSConfig(reynolds=10.0, refinements=3, pseudo_dt=0.5)
    dal = NavierStokesDAL(problem, cfg, adjoint_refinements=30)
    return optimize(dal, n_iterations=60, initial_lr=1e-1)


class TestDPSucceeds:
    def test_cost_reduced_substantially(self, dp_run):
        _, hist = dp_run
        assert hist.best_cost < hist.costs[0] * 0.25

    def test_outflow_closer_to_parabola(self, dp_run, problem):
        """Fig. 4d: DP's control yields a near-parabolic outflow."""
        c_dp, _ = dp_run
        cfg = NSConfig(reynolds=100.0, refinements=8, pseudo_dt=0.5)
        st0 = problem.solve(problem.default_control(), cfg)
        st1 = problem.solve(c_dp, cfg)
        mis0 = np.abs(st0.u[problem.outflow] - problem.u_target).max()
        mis1 = np.abs(st1.u[problem.outflow] - problem.u_target).max()
        assert mis1 < mis0

    def test_control_differs_from_initial(self, dp_run, problem):
        c_dp, _ = dp_run
        assert np.max(np.abs(c_dp - problem.default_control())) > 0.01


class TestDALFailsAtHighRe:
    def test_dal_worse_than_dp_at_re100(self, dal_run_re100, dp_run):
        """The paper's headline: 'DAL fails to capture the solution due to
        RBF-related inaccuracies' at Re = 100."""
        _, h_dal = dal_run_re100
        _, h_dp = dp_run
        assert h_dal.costs[-1] > 5 * h_dp.best_cost

    def test_dal_final_cost_degrades_or_stalls(self, dal_run_re100):
        _, hist = dal_run_re100
        # DAL ends no better than a modest improvement; typically worse
        # than where it started (paper Table 3: 8.2e-2 from ~2.7e-2).
        assert hist.costs[-1] > 0.5 * hist.costs[0]

    def test_dal_improves_at_re10(self, dal_run_re10):
        """§3.2: 'this problem is lessened with a reduced Re=10 which led
        to better solutions with DAL'."""
        _, hist = dal_run_re10
        assert hist.best_cost < hist.costs[0] * 0.7

    def test_re10_final_beats_re100_final(self, dal_run_re10, dal_run_re100):
        _, h10 = dal_run_re10
        _, h100 = dal_run_re100
        assert h10.costs[-1] < h100.costs[-1]


class TestRefinementCountMatters:
    def test_more_refinements_better_converged_forward(self, problem):
        cfg3 = NSConfig(reynolds=100.0, refinements=3, pseudo_dt=0.5)
        cfg10 = NSConfig(reynolds=100.0, refinements=10, pseudo_dt=0.5)
        c = problem.default_control()
        st3 = problem.solve(c, cfg3)
        st10 = problem.solve(c, cfg10)
        assert st10.update_history[-1] < st3.update_history[-1]

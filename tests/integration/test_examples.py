"""Smoke tests: the shipped examples must run and demonstrate their claims.

Each example is imported and its ``main`` exercised with stdout captured;
the slow ones are monkeypatched to smaller budgets where possible, so the
suite stays fast while still executing the real code paths.
"""

import importlib.util
import pathlib
import sys

import pytest

pytestmark = pytest.mark.slow

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    sys.modules[name] = mod
    spec.loader.exec_module(mod)
    return mod


class TestQuickstart:
    def test_runs_and_converges(self, capsys):
        mod = load_example("quickstart")
        mod.main()
        out = capsys.readouterr().out
        assert "optimised cost" in out
        # The printed optimised cost must be far below the initial one.
        for line in out.splitlines():
            if line.startswith("optimised cost"):
                assert float(line.split("=")[1]) < 1e-4

    def test_forward_solve_accuracy_reported(self, capsys):
        mod = load_example("quickstart")
        mod.main()
        out = capsys.readouterr().out
        assert "max |u - u_exact|" in out


class TestHeatInverse:
    def test_runs_and_reduces_misfit(self, capsys):
        mod = load_example("heat_inverse")
        mod.main()
        out = capsys.readouterr().out
        assert "terminal misfit" in out
        finals = [
            float(line.split("misfit")[1])
            for line in out.splitlines()
            if "final" in line and "misfit" in line
        ]
        assert finals and finals[0] < 1e-2


class TestExampleSources:
    """All examples exist, are importable as scripts, and carry docstrings."""

    @pytest.mark.parametrize(
        "name",
        [
            "quickstart",
            "laplace_control",
            "channel_flow_control",
            "gradient_accuracy",
            "heat_inverse",
        ],
    )
    def test_source_present_with_docstring(self, name):
        src = (EXAMPLES / f"{name}.py").read_text()
        assert src.lstrip().startswith('"""')
        assert "def main" in src
        assert '__main__' in src

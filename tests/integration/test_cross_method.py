"""Cross-method consistency: the gradient-accuracy hierarchy the paper
reports (DP = exact, FD = accurate, DAL = approximate)."""

import numpy as np
import pytest

from repro.control.dal import LaplaceDAL, NavierStokesDAL
from repro.control.dp import LaplaceDP, NavierStokesDP
from repro.control.fd import FiniteDifferenceOracle
from repro.pde.navier_stokes import NSConfig

pytestmark = pytest.mark.slow


class TestGradientHierarchyLaplace:
    def test_dp_closest_to_fd_truth(self, laplace_problem):
        """DP and FD agree to truncation error; DAL differs more (it is
        the gradient in a different — unweighted — metric)."""
        dp = LaplaceDP(laplace_problem)
        dal = LaplaceDAL(laplace_problem)
        fd = FiniteDifferenceOracle(dp.value, laplace_problem.zero_control())
        c = laplace_problem.zero_control()
        _, g_dp = dp.value_and_grad(c)
        _, g_dal = dal.value_and_grad(c)
        _, g_fd = fd.value_and_grad(c)

        def rel(a, b):
            return np.linalg.norm(a - b) / np.linalg.norm(b)

        assert rel(g_dp, g_fd) < 1e-6
        assert rel(g_dal, g_fd) > rel(g_dp, g_fd)

    def test_costs_identical_across_methods(self, laplace_problem):
        dp = LaplaceDP(laplace_problem)
        dal = LaplaceDAL(laplace_problem)
        c = laplace_problem.zero_control() + 0.03
        assert dp.value(c) == pytest.approx(dal.value(c), rel=1e-12)


class TestGradientHierarchyNS:
    def test_dp_exact_dal_approximate(self, channel_problem):
        cfg = NSConfig(reynolds=100.0, refinements=4, pseudo_dt=0.5)
        dp = NavierStokesDP(channel_problem, cfg)
        dal = NavierStokesDAL(channel_problem, cfg, adjoint_refinements=20)
        fd = FiniteDifferenceOracle(dp.value, channel_problem.default_control(), eps=1e-6)
        c = channel_problem.default_control()
        _, g_dp = dp.value_and_grad(c)
        _, g_dal = dal.value_and_grad(c)
        _, g_fd = fd.value_and_grad(c)

        def rel(a, b):
            return np.linalg.norm(a - b) / np.linalg.norm(b)

        # DP vs FD: machine-level agreement (the DTO gold standard).
        assert rel(g_dp, g_fd) < 1e-5
        # DAL (OTD continuous adjoint) is visibly off at Re = 100.
        assert rel(g_dal, g_fd) > 1e-2

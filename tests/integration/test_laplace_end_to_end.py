"""End-to-end Laplace control: the Fig. 3 comparisons at reduced scale."""

import numpy as np
import pytest

from repro.cloud.square import SquareCloud
from repro.control.dal import LaplaceDAL
from repro.control.dp import LaplaceDP
from repro.control.fd import FiniteDifferenceOracle
from repro.control.loop import optimize
from repro.pde.laplace import LaplaceControlProblem

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def problem():
    return LaplaceControlProblem(SquareCloud(20))


@pytest.fixture(scope="module")
def dp_run(problem):
    dp = LaplaceDP(problem)
    return optimize(dp, n_iterations=400, initial_lr=1e-2)


@pytest.fixture(scope="module")
def dal_run(problem):
    dal = LaplaceDAL(problem)
    return optimize(dal, n_iterations=400, initial_lr=1e-2)


class TestConvergence:
    def test_dp_reaches_tiny_cost(self, dp_run):
        """Fig. 3b / Table 3: DP drives the discrete J many orders down."""
        _, hist = dp_run
        assert hist.best_cost < 1e-6
        assert hist.best_cost < hist.costs[0] * 1e-5

    def test_dal_converges_on_laplace(self, dal_run):
        """§4: 'the DAL approach was shown to perform well on the Laplace
        optimal control problem'."""
        _, hist = dal_run
        assert hist.best_cost < 1e-4

    def test_costs_monotone_after_burnin(self, dp_run):
        _, hist = dp_run
        tail = hist.costs[50:]
        # Allow small Adam oscillations but require overall decrease.
        assert tail[-1] < tail[0]


class TestControlsAgreeAcrossMethods:
    def test_dp_and_dal_find_same_minimiser(self, dp_run, dal_run, problem):
        c_dp, _ = dp_run
        c_dal, _ = dal_run
        assert np.max(np.abs(c_dp - c_dal)) < 0.05

    def test_dp_matches_analytic_control(self, dp_run, problem):
        c_dp, _ = dp_run
        err = np.max(np.abs(c_dp - problem.optimal_control()))
        assert err < 0.12  # discretisation-limited agreement

    def test_dp_state_matches_analytic_state(self, dp_run, problem):
        """Fig. 3f–g: low absolute state error after optimisation."""
        c_dp, _ = dp_run
        dp = LaplaceDP(problem)
        u = dp.solve_state(c_dp)
        err = np.max(np.abs(u - problem.optimal_state()))
        assert err < 0.12


class TestFDBaseline:
    def test_fd_short_run_matches_dp_trajectory(self, problem):
        """Footnote 11: FD gradients are accurate — same first iterations."""
        dp = LaplaceDP(problem)
        fd = FiniteDifferenceOracle(dp.value, problem.zero_control())
        c_fd, h_fd = optimize(fd, n_iterations=10, initial_lr=1e-2)
        c_dp, h_dp = optimize(dp, n_iterations=10, initial_lr=1e-2)
        np.testing.assert_allclose(c_fd, c_dp, atol=1e-4)
        np.testing.assert_allclose(h_fd.costs, h_dp.costs, rtol=1e-6)

"""TraceRecorder: round-trip fidelity, schema stability, no-op cost."""

import json
import math
import tracemalloc

import pytest

from repro.obs.recorder import NULL_RECORDER, NullRecorder, TraceRecorder
from repro.obs.schema import (
    FIELDS,
    SCHEMA_VERSION,
    SUPPORTED_VERSIONS,
    CacheRecord,
    HealthRecord,
    IterationRecord,
    SolverRecord,
    decode_header,
    decode_record,
    encode_header,
    encode_record,
)


def _sample_recorder() -> TraceRecorder:
    rec = TraceRecorder(method="DP", problem="laplace")
    rec.set_meta(config="unit", backend="dense")
    rec.iteration(0, 1.5, 0.3, 1e-2, phases={"grad": 1e-3, "update": 2e-4})
    rec.iteration(1, 1.2, 0.25, 1e-2)
    rec.solver_event(
        "rbf-dense-lu", "factorize", n=100, seconds=0.01,
        condition_estimate=1e4,
    )
    rec.solver_event("rbf-dense-lu", "solve", n=100, residual=1e-14)
    rec.solver_event("rbf-sparse-splu", "solve", n=100, nnz=900)
    rec.cache_stats("lu-cache", hits=48, misses=2)
    rec.health_event("nan", "error", iteration=1, value=float("inf"),
                     message="cost became non-finite")
    return rec


class TestTraceRecorder:
    def test_truthiness_and_len(self):
        rec = TraceRecorder()
        assert rec and rec.enabled
        assert len(rec) == 0
        rec.iteration(0, 1.0, 1.0, 1e-2)
        assert len(rec) == 1

    def test_views_split_by_kind(self):
        rec = _sample_recorder()
        assert [r.iteration for r in rec.iterations] == [0, 1]
        assert [r.event for r in rec.solver_events] == [
            "factorize", "solve", "solve",
        ]
        assert [r.cache for r in rec.caches] == ["lu-cache"]
        assert [r.check for r in rec.healths] == ["nan"]
        assert len(rec.records) == 7

    def test_records_preserve_emission_order(self):
        rec = _sample_recorder()
        kinds = [type(r).__name__ for r in rec.records]
        assert kinds == [
            "IterationRecord", "IterationRecord",
            "SolverRecord", "SolverRecord", "SolverRecord",
            "CacheRecord", "HealthRecord",
        ]

    def test_jsonl_round_trip(self, tmp_path):
        rec = _sample_recorder()
        path = tmp_path / "trace.jsonl"
        rec.to_jsonl(path)
        back = TraceRecorder.from_jsonl(path)
        assert back.meta == rec.meta
        assert back.records == rec.records

    def test_jsonl_round_trips_nan_cost(self, tmp_path):
        # Diverged runs record NaN costs; they must survive the wire.
        rec = TraceRecorder()
        rec.iteration(0, float("nan"), float("inf"), 1e-1)
        path = tmp_path / "nan.jsonl"
        rec.to_jsonl(path)
        back = TraceRecorder.from_jsonl(path)
        assert math.isnan(back.iterations[0].cost)
        assert math.isinf(back.iterations[0].grad_norm)

    def test_jsonl_is_one_object_per_line(self, tmp_path):
        rec = _sample_recorder()
        path = tmp_path / "trace.jsonl"
        rec.to_jsonl(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1 + len(rec.records)
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert header["schema_version"] == SCHEMA_VERSION
        for line in lines[1:]:
            assert json.loads(line)["kind"] in (
                "iteration", "solver", "cache", "health",
            )

    def test_header_carries_environment_fingerprint(self, tmp_path):
        rec = _sample_recorder()
        path = tmp_path / "trace.jsonl"
        rec.to_jsonl(path)
        header = json.loads(path.read_text().splitlines()[0])
        assert "env" in header
        assert "python" in header["env"]
        back = TraceRecorder.from_jsonl(path)
        assert back.env == header["env"]

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty trace"):
            TraceRecorder.from_jsonl(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "headerless.jsonl"
        path.write_text('{"kind":"iteration","iteration":0,"cost":1.0,'
                        '"grad_norm":1.0,"step_size":0.01,"phases":{}}\n')
        with pytest.raises(ValueError, match="header"):
            TraceRecorder.from_jsonl(path)

    def test_summary_headlines(self):
        rec = _sample_recorder()
        s = rec.summary()
        assert s["n_iterations"] == 2
        assert s["first_cost"] == 1.5
        assert s["final_cost"] == 1.2
        assert s["best_cost"] == 1.2
        assert s["n_solver_events"] == 3
        assert s["caches"]["lu-cache"]["hits"] == 48
        assert s["caches"]["lu-cache"]["hit_rate"] == pytest.approx(0.96)
        assert s["phase_seconds"]["grad"] == pytest.approx(1e-3)


class TestSchemaStability:
    """The wire format is versioned: these tests pin it.

    If one fails because you changed a record, bump ``SCHEMA_VERSION``
    and regenerate the goldens — do not just update the expectation.
    """

    def test_field_lists_are_pinned(self):
        assert FIELDS == {
            "iteration": (
                "iteration", "cost", "grad_norm", "step_size", "phases",
            ),
            "solver": (
                "solver", "event", "n", "seconds", "residual",
                "condition_estimate", "nnz", "iterations",
            ),
            "cache": ("cache", "hits", "misses"),
            "health": ("check", "severity", "iteration", "value", "message"),
        }

    def test_schema_version_is_three(self):
        # v3: HealthRecord (watchdog events) + env header key.
        assert SCHEMA_VERSION == 3

    def test_v2_traces_still_decode(self):
        # v3 only *added* a record kind and an optional header key, so
        # the committed v2 goldens must decode without regeneration.
        assert 2 in SUPPORTED_VERSIONS
        header = encode_header({"method": "DP"})
        header["schema_version"] = 2
        assert decode_header(header)["method"] == "DP"

    def test_encode_decode_identity(self):
        records = [
            IterationRecord(3, 0.5, 0.1, 1e-3, {"grad": 0.1}),
            SolverRecord("s", "solve", 10, residual=1e-9, nnz=7),
            CacheRecord("c", 5, 1),
            HealthRecord("stall", "warning", 40, 1.2e-9, "no improvement"),
        ]
        for r in records:
            assert decode_record(encode_record(r)) == r

    def test_decode_rejects_unknown_field(self):
        obj = encode_record(IterationRecord(0, 1.0, 1.0, 1e-2))
        obj["surprise"] = 42
        with pytest.raises(ValueError, match="unknown fields"):
            decode_record(obj)

    def test_decode_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown trace record kind"):
            decode_record({"kind": "mystery"})

    def test_header_rejects_future_version(self):
        obj = encode_header({"method": "DP"})
        obj["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="not supported"):
            decode_header(obj)

    def test_cache_hit_rate_zero_when_unused(self):
        assert CacheRecord("c", 0, 0).hit_rate == 0.0


class TestNullRecorder:
    def test_falsy_and_disabled(self):
        assert not NULL_RECORDER
        assert not NullRecorder()
        assert NULL_RECORDER.enabled is False
        assert len(NULL_RECORDER) == 0

    def test_all_emissions_are_noops(self):
        n = NullRecorder()
        n.set_meta(method="DP")
        n.iteration(0, 1.0, 1.0, 1e-2, phases={"grad": 0.1})
        n.solver_event("s", "solve", 10, residual=1e-9)
        n.cache_stats("c", 1, 2)
        n.health_event("nan", "error", 0, float("nan"))
        assert len(n) == 0

    def test_allocates_nothing(self):
        # The disabled path must be allocation-free: NullRecorder is
        # stateless (__slots__ = ()) and its methods build no objects.
        n = NULL_RECORDER
        for _ in range(32):  # warm up: bytecode caches, int pool
            n.iteration(0, 1.0, 1.0, 1e-2)
            n.solver_event("s", "solve", 10)
            n.cache_stats("c", 1, 2)
            n.health_event("nan", "error", 0, 0.0)
        tracemalloc.start()
        try:
            before = tracemalloc.get_traced_memory()[0]
            for i in range(1000):
                n.iteration(i, 1.0, 1.0, 1e-2)
                n.solver_event("s", "solve", 10)
                n.cache_stats("c", 1, 2)
                n.health_event("nan", "error", i, 0.0)
            after = tracemalloc.get_traced_memory()[0]
        finally:
            tracemalloc.stop()
        # Zero growth module small interpreter noise (< 1 byte/call).
        assert after - before < 512

    def test_has_no_instance_dict(self):
        with pytest.raises(AttributeError):
            NullRecorder().stash = 1

"""Tests for the metrics registry and the cache-counter migration."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.obs.metrics import (
    BYTE_BUCKETS,
    Counter,
    FLOP_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    TIME_BUCKETS,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.recorder import TraceRecorder
from repro.obs.schema import CacheRecord


class TestInstruments:
    def test_counter_increments(self):
        c = Counter("n.events")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        assert c.snapshot() == {"kind": "counter", "value": 3.5}

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("n").inc(-1)

    def test_gauge_set_and_inc(self):
        g = Gauge("depth")
        g.set(7)
        g.inc(-2)
        assert g.value == 5.0
        assert g.snapshot()["kind"] == "gauge"

    def test_histogram_bucketing(self):
        h = Histogram("lat", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 5.0, 50.0, 5000.0):
            h.observe(v)
        assert h.counts == [1, 2, 1, 1]  # last slot = overflow
        assert h.count == 5
        assert h.sum == pytest.approx(5060.5)
        assert h.mean == pytest.approx(5060.5 / 5)

    def test_histogram_boundary_goes_low(self):
        h = Histogram("edge", buckets=(1.0, 2.0))
        h.observe(1.0)  # <= bound lands in that bucket
        assert h.counts == [1, 0, 0]

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match=">= 1 bucket"):
            Histogram("h", buckets=())

    def test_default_bucket_constants_are_valid(self):
        for bounds in (TIME_BUCKETS, FLOP_BUCKETS, BYTE_BUCKETS):
            assert all(a < b for a, b in zip(bounds, bounds[1:]))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered as counter"):
            reg.gauge("x")
        with pytest.raises(TypeError, match="not histogram"):
            reg.histogram("x")

    def test_iteration_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert [m.name for m in reg] == ["a", "b"]

    def test_snapshot_is_json_ready(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        snap = reg.snapshot()
        json.dumps(snap)
        assert snap["c"]["value"] == 1.0
        assert snap["h"]["counts"] == [0, 1, 0]

    def test_to_text_prometheus_flavour(self):
        reg = MetricsRegistry()
        reg.counter("events", help="number of events").inc(3)
        reg.histogram("lat", buckets=(1.0,)).observe(0.5)
        text = reg.to_text()
        assert "# HELP events number of events" in text
        assert "# TYPE events counter" in text
        assert "events 3" in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 0' in text
        assert "lat_count 1" in text

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.clear()
        assert len(reg) == 0


class TestCacheBridge:
    def test_record_cache_round_trips_as_cache_records(self):
        reg = MetricsRegistry()
        reg.record_cache("lu-cache", hits=10, misses=2)
        reg.record_cache("compiled-replay", hits=5, misses=1)
        records = reg.cache_records()
        assert records == [
            CacheRecord(cache="compiled-replay", hits=5, misses=1),
            CacheRecord(cache="lu-cache", hits=10, misses=2),
        ]

    def test_record_cache_overwrites(self):
        reg = MetricsRegistry()
        reg.record_cache("lu-cache", hits=1, misses=1)
        reg.record_cache("lu-cache", hits=9, misses=1)
        (rec,) = reg.cache_records()
        assert rec.hits == 9


class TestScoping:
    def test_use_registry_swaps_and_restores(self):
        outer = get_registry()
        with use_registry() as reg:
            assert get_registry() is reg
            assert get_registry() is not outer
        assert get_registry() is outer

    def test_set_registry_returns_previous(self):
        fresh = MetricsRegistry()
        prev = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            assert set_registry(prev) is fresh


class TestCounterMigrationEquivalence:
    """The registry counters must agree with the legacy per-object ones."""

    def test_dense_lu_solver(self):
        from repro.autodiff.linalg import LUSolver

        rng = np.random.default_rng(0)
        A = rng.standard_normal((8, 8)) + 8 * np.eye(8)
        with use_registry() as reg:
            lus = LUSolver(A)
            for _ in range(4):
                lus.solve_numpy(rng.standard_normal(8))
            assert reg.counter("linalg.dense.factorizations").value == \
                lus.n_factorizations == 1
            assert reg.counter("linalg.dense.solves").value == \
                lus.n_solves == 4

    def test_sparse_lu_solver(self):
        from repro.autodiff.sparse import SparseLUSolver

        rng = np.random.default_rng(1)
        A = sp.csr_matrix(np.diag(rng.uniform(1, 2, size=6)))
        with use_registry() as reg:
            s = SparseLUSolver(A)
            for _ in range(3):
                s.solve_numpy(rng.standard_normal(6))
            assert reg.counter("linalg.sparse.factorizations").value == \
                s.n_factorizations == 1
            assert reg.counter("linalg.sparse.solves").value == \
                s.n_solves == 3

    def test_compiled_replay_counters(self):
        from repro.autodiff import ops
        from repro.autodiff.compile import compiled_value_and_grad

        def f(c):
            return ops.sum_(ops.square(c))

        with use_registry() as reg:
            vg = compiled_value_and_grad(f)
            x = np.arange(5, dtype=np.float64)
            for _ in range(3):
                vg(x)
            info = vg.cache_info()
            assert reg.counter("compile.traces").value == info["traces"] == 1
            assert reg.counter("compile.replays").value == info["replays"] == 2

    def test_hooks_publish_registry_and_recorder_agree(self):
        from repro.obs.hooks import record_solver_cache

        class FakeSolver:
            n_factorizations = 2
            n_solves = 12

        rec = TraceRecorder()
        with use_registry() as reg:
            record_solver_cache(rec, FakeSolver(), name="lu-cache")
            (from_registry,) = reg.cache_records()
        (from_trace,) = rec.caches
        assert from_trace.cache == from_registry.cache == "lu-cache"
        assert from_trace.hits == from_registry.hits == 10
        assert from_trace.misses == from_registry.misses == 2

    def test_hooks_publish_without_recorder(self):
        from repro.obs.hooks import record_solver_cache

        class FakeSolver:
            n_factorizations = 1
            n_solves = 5

        with use_registry() as reg:
            record_solver_cache(None, FakeSolver())
            (rec,) = reg.cache_records()
        assert (rec.hits, rec.misses) == (4, 1)


class TestRegistryInstallConcurrency:
    """set_registry/use_registry must be safe under concurrent installers."""

    def _restore_default(self):
        from repro.obs import metrics as m

        set_registry(m._DEFAULT)

    def test_set_registry_returns_previous_atomically(self):
        import threading

        base = get_registry()
        try:
            regs = [MetricsRegistry() for _ in range(64)]
            previous = []
            lock = threading.Lock()

            def install(r):
                prev = set_registry(r)
                with lock:
                    previous.append(prev)

            threads = [
                threading.Thread(target=install, args=(r,)) for r in regs
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            # Atomic swaps form a chain: every registry is handed out as
            # "previous" exactly once, starting from the base registry.
            final = get_registry()
            seen = previous + [final]
            assert base in previous
            for r in regs:
                assert seen.count(r) == 1
        finally:
            self._restore_default()

    def test_use_registry_nests_and_restores(self):
        base = get_registry()
        with use_registry() as outer:
            assert get_registry() is outer
            with use_registry() as inner:
                assert get_registry() is inner
            assert get_registry() is outer
        assert get_registry() is base

    def test_stale_exit_does_not_clobber_newer_install(self):
        base = get_registry()
        try:
            cm = use_registry()
            scoped = cm.__enter__()
            assert get_registry() is scoped
            # A concurrent installer replaces the scoped registry before
            # the block exits (e.g. a task callback on another thread).
            newer = MetricsRegistry()
            set_registry(newer)
            cm.__exit__(None, None, None)
            # The stale block must NOT restore its predecessor over the
            # newer install.
            assert get_registry() is newer
        finally:
            self._restore_default()

    def test_exit_restores_when_still_active(self):
        base = get_registry()
        cm = use_registry()
        cm.__enter__()
        cm.__exit__(None, None, None)
        assert get_registry() is base


class TestMergeSnapshot:
    def test_counters_sum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(3)
        b.counter("n").inc(4)
        merged = MetricsRegistry()
        merged.merge_snapshot(a.snapshot())
        merged.merge_snapshot(b.snapshot())
        assert merged.counter("n").value == 7

    def test_gauges_sum_across_fresh_shards(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.record_cache("lu", hits=5, misses=1)
        b.record_cache("lu", hits=2, misses=2)
        merged = MetricsRegistry()
        merged.merge_snapshot(a.snapshot())
        merged.merge_snapshot(b.snapshot())
        (rec,) = merged.cache_records()
        assert (rec.hits, rec.misses) == (7, 3)

    def test_histograms_merge_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("t", (1.0, 10.0)).observe(0.5)
        b.histogram("t", (1.0, 10.0)).observe(5.0)
        b.histogram("t", (1.0, 10.0)).observe(50.0)
        merged = MetricsRegistry()
        merged.merge_snapshot(a.snapshot())
        merged.merge_snapshot(b.snapshot())
        h = merged.histogram("t", (1.0, 10.0))
        assert h.counts == [1, 1, 1]
        assert h.count == 3
        assert h.sum == pytest.approx(55.5)

    def test_mismatched_histogram_buckets_rejected(self):
        a = MetricsRegistry()
        a.histogram("t", (1.0, 10.0)).observe(0.5)
        merged = MetricsRegistry()
        merged.histogram("t", (2.0, 20.0))
        with pytest.raises(ValueError, match="boundaries differ"):
            merged.merge_snapshot(a.snapshot())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kind"):
            MetricsRegistry().merge_snapshot({"x": {"kind": "wat"}})

    def test_merge_into_nonempty_registry(self):
        shard = MetricsRegistry()
        shard.counter("n").inc(2)
        parent = MetricsRegistry()
        parent.counter("n").inc(1)
        parent.merge_snapshot(shard.snapshot())
        assert parent.counter("n").value == 3

    def test_empty_shard_is_a_noop(self):
        # A worker that recorded nothing ships an empty snapshot; merging
        # it must neither create instruments nor disturb existing ones.
        parent = MetricsRegistry()
        parent.counter("n").inc(5)
        parent.merge_snapshot(MetricsRegistry().snapshot())
        parent.merge_snapshot({})
        assert len(parent) == 1
        assert parent.counter("n").value == 5

    def test_merge_into_empty_registry_from_empty_shard(self):
        merged = MetricsRegistry()
        merged.merge_snapshot({})
        assert len(merged) == 0

    def test_counter_name_collision_across_kinds_rejected(self):
        # Shard says "n" is a counter, parent already has a gauge "n":
        # silent summation would corrupt semantics, so it must raise.
        shard = MetricsRegistry()
        shard.counter("n").inc(1)
        parent = MetricsRegistry()
        parent.gauge("n").set(10)
        with pytest.raises(TypeError, match="already registered as gauge"):
            parent.merge_snapshot(shard.snapshot())
        # And the symmetric direction: gauge shard into counter parent.
        gshard = MetricsRegistry()
        gshard.gauge("m").set(1)
        cparent = MetricsRegistry()
        cparent.counter("m").inc(1)
        with pytest.raises(TypeError, match="already registered as counter"):
            cparent.merge_snapshot(gshard.snapshot())

    def test_merge_after_merge_matches_single_pass(self):
        # Folding shards pairwise then folding the result again must give
        # the same totals as one flat pass — merge is associative.
        shards = []
        for i in range(1, 4):
            r = MetricsRegistry()
            r.counter("n").inc(i)
            r.histogram("t", (1.0, 10.0)).observe(float(i))
            shards.append(r.snapshot())

        flat = MetricsRegistry()
        for s in shards:
            flat.merge_snapshot(s)

        staged = MetricsRegistry()
        staged.merge_snapshot(shards[0])
        staged.merge_snapshot(shards[1])
        intermediate = staged.snapshot()
        nested = MetricsRegistry()
        nested.merge_snapshot(intermediate)
        nested.merge_snapshot(shards[2])

        assert nested.snapshot() == flat.snapshot()
        assert nested.counter("n").value == 6
        assert nested.histogram("t", (1.0, 10.0)).count == 3

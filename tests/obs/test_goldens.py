"""Golden-trace regression tests.

Each test runs one tier-0 config (seconds-fast, fully deterministic) and
compares its trace against the committed baseline in ``tests/goldens/``
under the default :class:`~repro.obs.compare.TolerancePolicy` — exact on
structure, relative on trajectories, timings excluded.

To rebless the baselines after an intentional behaviour change::

    pytest tests/obs/test_goldens.py --regen-goldens

then commit the rewritten ``tests/goldens/*.jsonl`` with an explanation
of why the convergence behaviour changed.
"""

from pathlib import Path

import pytest

from repro.obs.compare import diff_traces, format_diff
from repro.obs.goldens import TIER0, run_tier0
from repro.obs.recorder import TraceRecorder

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "goldens"

#: Configs with a committed baseline (one Laplace + one Navier–Stokes).
GOLDEN_CONFIGS = ("laplace_dp_tier0", "ns_dp_tier0")


def _golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.jsonl"


@pytest.mark.parametrize("name", GOLDEN_CONFIGS)
def test_trace_matches_golden(name, regen_goldens):
    trace = run_tier0(name)
    path = _golden_path(name)
    if regen_goldens:
        path.parent.mkdir(parents=True, exist_ok=True)
        trace.to_jsonl(path)
        pytest.skip(f"reblessed golden baseline: {path}")
    baseline = TraceRecorder.from_jsonl(path)
    devs = diff_traces(baseline, trace)
    assert devs == [], format_diff(devs)


def test_same_config_reruns_agree():
    # The determinism premise of the golden layer, checked directly:
    # two fresh runs of one config may differ only in excluded timings.
    a = run_tier0("laplace_dal_tier0")
    b = run_tier0("laplace_dal_tier0")
    devs = diff_traces(a, b)
    assert devs == [], format_diff(devs)


def test_comparator_catches_injected_regression(regen_goldens):
    # Perturb one hyperparameter and the diff must flag it — this is
    # the end-to-end proof that the golden layer can actually fail.
    if regen_goldens:
        pytest.skip("baselines are being reblessed")
    baseline = TraceRecorder.from_jsonl(_golden_path("laplace_dp_tier0"))
    perturbed = run_tier0("laplace_dp_tier0", lr=2e-2)
    devs = diff_traces(baseline, perturbed)
    assert devs, "comparator accepted a run with a doubled learning rate"
    fields = {d.field for d in devs}
    assert "step_size" in fields  # the lr change itself
    assert "cost" in fields  # and its downstream trajectory change


def test_golden_traces_carry_identity_metadata():
    for name in GOLDEN_CONFIGS:
        baseline = TraceRecorder.from_jsonl(_golden_path(name))
        assert baseline.meta.get("config") == name
        assert baseline.meta.get("method") in ("DP", "DAL")
        assert baseline.meta.get("problem") in ("laplace", "navier-stokes")
        assert len(baseline.iterations) == TIER0[name].iterations

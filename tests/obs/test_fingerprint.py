"""Environment fingerprinting and config content-digests."""

from dataclasses import dataclass

from repro.obs.fingerprint import config_digest, environment_fingerprint


@dataclass(frozen=True)
class _Cfg:
    nx: int = 26
    lr: float = 1e-2
    backend: str = "dense"


class TestEnvironmentFingerprint:
    def test_carries_the_identity_keys(self):
        fp = environment_fingerprint()
        for key in ("git_sha", "platform", "python", "implementation",
                    "cpu_count", "numpy", "blas", "env"):
            assert key in fp
        assert fp["cpu_count"] >= 1
        assert isinstance(fp["numpy"], str)

    def test_returns_a_fresh_dict_each_call(self):
        a = environment_fingerprint()
        b = environment_fingerprint()
        assert a == b
        assert a is not b
        a["python"] = "mutated"
        assert environment_fingerprint()["python"] != "mutated"

    def test_repro_env_capture_is_live(self, monkeypatch):
        monkeypatch.delenv("REPRO_SMOKE_TEST", raising=False)
        before = environment_fingerprint()
        assert "REPRO_SMOKE_TEST" not in before["env"]
        monkeypatch.setenv("REPRO_SMOKE_TEST", "1")
        after = environment_fingerprint()
        assert after["env"]["REPRO_SMOKE_TEST"] == "1"

    def test_non_repro_env_is_excluded(self, monkeypatch):
        monkeypatch.setenv("UNRELATED_KNOB", "x")
        assert "UNRELATED_KNOB" not in environment_fingerprint()["env"]

    def test_json_serialisable(self):
        import json

        json.dumps(environment_fingerprint())


class TestConfigDigest:
    def test_shape_and_determinism(self):
        d = config_digest({"a": 1})
        assert d.startswith("sha256:")
        assert len(d) == len("sha256:") + 16
        assert d == config_digest({"a": 1})

    def test_dict_ordering_is_canonicalised(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest({"b": 2, "a": 1})

    def test_tuples_and_lists_hash_identically(self):
        assert config_digest((1, 2, 3)) == config_digest([1, 2, 3])

    def test_dataclasses_digest_by_content(self):
        assert config_digest(_Cfg()) == config_digest(_Cfg())
        assert config_digest(_Cfg()) != config_digest(_Cfg(nx=27))
        # A dataclass and its asdict() expansion are the same content.
        assert config_digest(_Cfg()) == config_digest(
            {"nx": 26, "lr": 1e-2, "backend": "dense"}
        )

    def test_value_changes_change_the_digest(self):
        assert config_digest({"lr": 1e-2}) != config_digest({"lr": 1e-3})

    def test_non_json_values_fall_back_to_repr(self):
        class Odd:
            def __repr__(self):
                return "<odd>"

        assert config_digest({"x": Odd()}) == config_digest({"x": Odd()})

"""Tests for the standalone HTML performance report."""

import json

from repro.obs.profile import SpanProfiler
from repro.obs.report import load_artifact, render_report


def _make_trace(method="DP", problem="laplace"):
    prof = SpanProfiler()
    with prof.span("grad", "phase"):
        with prof.span("rbf.solve", "solver"):
            pass
    with prof.span("update", "phase"):
        pass
    return prof, prof.to_chrome_trace(
        meta={"method": method, "problem": problem, "wall_time_s": 0.5}
    )


def _make_metrics(prof, method="DP", problem="laplace"):
    return {
        "kind": "repro.profile.metrics",
        "meta": {"method": method, "problem": problem, "wall_time_s": 0.5},
        "phase_seconds": prof.phase_seconds(),
        "spans": prof.summary_rows(),
        "metrics": {
            "linalg.dense.solves": {"kind": "counter", "value": 3.0},
            "compile.op.flops": {
                "kind": "histogram",
                "buckets": [1.0, 10.0],
                "counts": [1, 0, 2],
                "sum": 25.0,
                "count": 3,
            },
        },
    }


class TestRenderReport:
    def test_empty_input_renders(self):
        page = render_report([])
        assert page.startswith("<!DOCTYPE html>")
        assert "No profile artifacts" in page

    def test_single_trace_has_flamegraph_and_phases(self):
        _, trace = _make_trace()
        page = render_report([trace])
        assert "laplace · DP" in page
        assert 'class="flame"' in page
        assert 'class="bar-row"' in page
        assert "grad" in page and "update" in page

    def test_trace_plus_metrics_merge_into_one_run(self):
        prof, trace = _make_trace()
        page = render_report([trace, _make_metrics(prof)])
        # one run section, one bar row
        assert page.count('class="bar-row"') == 1
        assert "linalg.dense.solves" in page
        assert "compile.op.flops" in page

    def test_multiple_methods_compared(self):
        _, t1 = _make_trace("DAL")
        _, t2 = _make_trace("DP")
        page = render_report([t1, t2])
        assert "laplace · DAL" in page
        assert "laplace · DP" in page
        assert page.count('class="bar-row"') == 2
        assert 'class="legend"' in page  # >= 2 series => legend present

    def test_values_are_escaped(self):
        prof = SpanProfiler()
        with prof.span("<script>alert(1)</script>", "phase"):
            pass
        page = render_report([prof.to_chrome_trace()])
        assert "<script>alert(1)" not in page
        assert "&lt;script&gt;" in page

    def test_dark_mode_styles_present(self):
        page = render_report([])
        assert "prefers-color-scheme: dark" in page
        assert 'data-theme="dark"' in page

    def test_load_artifact_round_trip(self, tmp_path):
        _, trace = _make_trace()
        p = tmp_path / "x.trace.json"
        p.write_text(json.dumps(trace))
        assert load_artifact(str(p)) == trace


class TestCLIReport:
    def test_obs_report_subcommand(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        prof, trace = _make_trace()
        t = tmp_path / "laplace_dp.trace.json"
        t.write_text(json.dumps(trace))
        m = tmp_path / "laplace_dp.metrics.json"
        m.write_text(json.dumps(_make_metrics(prof)))
        out = tmp_path / "report.html"
        rc = main(["report", str(t), str(m), "-o", str(out)])
        assert rc == 0
        text = out.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "laplace · DP" in text

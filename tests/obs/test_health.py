"""Run-health watchdog: NaN, stall, and Krylov blow-up detection."""

import math

import numpy as np
import pytest

from repro.obs.health import (
    Watchdog,
    WatchdogConfig,
    current_watchdog,
    set_watchdog,
    watching,
)
from repro.obs.metrics import use_registry


class TestNanCheck:
    def test_finite_telemetry_raises_nothing(self):
        wd = Watchdog()
        for i in range(100):
            assert wd.observe_iteration(i, 1.0 / (i + 1), 0.1) == []
        assert wd.healthy
        assert wd.counts == {}

    def test_nan_cost_is_an_error_event(self):
        wd = Watchdog()
        (ev,) = wd.observe_iteration(3, math.nan, 0.1)
        assert ev.check == "nan"
        assert ev.severity == "error"
        assert ev.iteration == 3
        assert math.isnan(ev.value)
        assert not wd.healthy

    def test_inf_grad_norm_detected_too(self):
        wd = Watchdog()
        (ev,) = wd.observe_iteration(0, 1.0, math.inf)
        assert ev.check == "nan"
        assert math.isinf(ev.value)

    def test_only_first_occurrence_emits_but_counts_keep_rising(self):
        wd = Watchdog()
        assert len(wd.observe_iteration(0, math.nan, 1.0)) == 1
        assert wd.observe_iteration(1, math.nan, 1.0) == []
        assert wd.observe_iteration(2, math.nan, 1.0) == []
        assert wd.counts["nan"] == 3
        assert len([e for e in wd.events if e.check == "nan"]) == 1

    def test_increments_registry_counter(self):
        with use_registry() as reg:
            Watchdog().observe_iteration(0, math.nan, 1.0)
            assert reg.counter("health.nan").value == 1


class TestStallCheck:
    def _stall(self, wd, start, n):
        events = []
        for i in range(start, start + n):
            events += wd.observe_iteration(i, 1.0, 0.1)  # flat cost
        return events

    def test_fires_after_the_window(self):
        wd = Watchdog(WatchdogConfig(stall_window=10))
        wd.observe_iteration(0, 1.0, 0.1)
        events = self._stall(wd, 1, 9)
        assert events == []  # 9 flat iterations: window not yet hit
        (ev,) = self._stall(wd, 10, 1)
        assert ev.check == "stall"
        assert ev.severity == "warning"
        assert ev.value == 10.0

    def test_fires_once_per_episode(self):
        wd = Watchdog(WatchdogConfig(stall_window=5))
        events = self._stall(wd, 0, 50)
        assert [e.check for e in events] == ["stall"]

    def test_rearms_after_real_improvement(self):
        wd = Watchdog(WatchdogConfig(stall_window=5))
        events = self._stall(wd, 0, 10)
        assert len(events) == 1
        # A genuine improvement (> stall_rtol relative) re-arms the check.
        assert wd.observe_iteration(10, 0.5, 0.1) == []
        for i in range(11, 15):
            assert wd.observe_iteration(i, 0.5, 0.1) == []
        (ev,) = wd.observe_iteration(16, 0.5, 0.1)
        assert ev.check == "stall"

    def test_sub_rtol_improvement_still_counts_as_stalled(self):
        wd = Watchdog(WatchdogConfig(stall_window=5, stall_rtol=1e-2))
        cost = 1.0
        events = []
        for i in range(20):
            cost *= 1.0 - 1e-4  # improving, but far below rtol
            events += wd.observe_iteration(i, cost, 0.1)
        assert [e.check for e in events] == ["stall"]


class TestKrylovCheck:
    def test_stable_iteration_counts_are_quiet(self):
        wd = Watchdog()
        for k in range(20):
            assert wd.observe_krylov(100, 10 + (k % 3)) == []

    def test_blowup_detected_against_rolling_median(self):
        wd = Watchdog(WatchdogConfig(krylov_min_history=5))
        for its in (10, 10, 11, 10, 12):
            assert wd.observe_krylov(100, its) == []
        (ev,) = wd.observe_krylov(100, 95)
        assert ev.check == "krylov_blowup"
        assert ev.severity == "warning"
        assert ev.value == 95.0

    def test_no_blowup_before_min_history(self):
        wd = Watchdog(WatchdogConfig(krylov_min_history=5))
        for its in (10, 10, 11):
            wd.observe_krylov(100, its)
        assert wd.observe_krylov(100, 500) == []  # history still arming

    def test_histories_keyed_by_system_size(self):
        wd = Watchdog(WatchdogConfig(krylov_min_history=3))
        for _ in range(5):
            wd.observe_krylov(100, 10)
        # A big fresh system with naturally higher counts must not be
        # judged against the small system's baseline.
        assert wd.observe_krylov(10000, 80) == []

    def test_failure_to_converge_is_an_error(self):
        wd = Watchdog()
        (ev,) = wd.observe_krylov(100, 500, converged=False)
        assert ev.check == "krylov_failure"
        assert ev.severity == "error"
        assert not wd.healthy


class TestEventCapAndCounts:
    def test_retained_events_capped_counts_not(self):
        wd = Watchdog(WatchdogConfig(max_events=3))
        for i in range(10):
            wd.observe_krylov(5, 100, converged=False)
        assert len(wd.events) == 3
        assert wd.counts["krylov_failure"] == 10


class TestInstallation:
    def test_disabled_by_default(self):
        assert current_watchdog() is None

    def test_watching_installs_and_restores(self):
        assert current_watchdog() is None
        with watching() as wd:
            assert current_watchdog() is wd
            with watching(Watchdog()) as inner:
                assert current_watchdog() is inner
            assert current_watchdog() is wd
        assert current_watchdog() is None

    def test_set_watchdog_returns_previous(self):
        wd = Watchdog()
        assert set_watchdog(wd) is None
        try:
            assert current_watchdog() is wd
        finally:
            assert set_watchdog(None) is wd
        assert current_watchdog() is None


class TestLoopIntegration:
    def _nan_oracle(self):
        class NaNOracle:
            calls = 0

            def value_and_grad(self, c):
                self.calls += 1
                if self.calls > 3:
                    return math.nan, np.full_like(c, math.nan)
                return float(np.sum(c * c)), 2.0 * c

            def initial_control(self):
                return np.ones(4)

        return NaNOracle()

    def test_optimize_reports_nan_through_the_watchdog(self):
        from repro.control.loop import optimize

        with use_registry() as reg, watching() as wd:
            optimize(self._nan_oracle(), n_iterations=10, initial_lr=1e-2)
        assert wd.counts["nan"] >= 1
        assert not wd.healthy
        assert reg.counter("health.nan").value >= 1

    def test_optimize_forwards_events_to_the_recorder(self):
        from repro.control.loop import optimize
        from repro.obs.recorder import TraceRecorder

        rec = TraceRecorder()
        with watching():
            optimize(self._nan_oracle(), n_iterations=10, initial_lr=1e-2,
                     recorder=rec)
        checks = [r.check for r in rec.healths]
        assert "nan" in checks
        assert rec.summary()["health"]["nan"] >= 1

    def test_healthy_run_emits_no_events(self):
        from repro.control.loop import optimize

        class Quad:
            def value_and_grad(self, c):
                return float(np.sum(c * c)), 2.0 * c

            def initial_control(self):
                return np.ones(4)

        with watching() as wd:
            optimize(Quad(), n_iterations=30, initial_lr=1e-1)
        assert wd.events == []
        assert wd.healthy

    def test_disabled_watchdog_leaves_optimize_untouched(self):
        from repro.control.loop import optimize

        assert current_watchdog() is None
        _, hist = optimize(self._nan_oracle(), n_iterations=10,
                           initial_lr=1e-2)
        # The loop's own divergence handling (stop at non-finite cost)
        # is unchanged when no watchdog is installed.
        assert math.isnan(hist.costs[-1])

"""The golden comparator: tolerance classes, NaN semantics, reporting."""

import math

import pytest

from repro.obs.compare import TolerancePolicy, diff_traces, format_diff
from repro.obs.recorder import TraceRecorder


def _trace(costs, step=1e-2, meta=None) -> TraceRecorder:
    rec = TraceRecorder(**(meta or {"method": "DP", "problem": "laplace"}))
    for i, c in enumerate(costs):
        rec.iteration(i, c, grad_norm=abs(c), step_size=step,
                      phases={"grad": 0.1 * (i + 1)})
    return rec


class TestExactFields:
    def test_identical_traces_agree(self):
        a, b = _trace([3.0, 2.0, 1.0]), _trace([3.0, 2.0, 1.0])
        assert diff_traces(a, b) == []

    def test_iteration_count_is_exact(self):
        devs = diff_traces(_trace([3.0, 2.0, 1.0]), _trace([3.0, 2.0]))
        assert any(d.field == "n_iterations" for d in devs)

    def test_step_size_is_near_exact(self):
        devs = diff_traces(_trace([1.0]), _trace([1.0], step=2e-2))
        assert [d.field for d in devs] == ["step_size"]

    def test_meta_identity_keys_exact(self):
        a = _trace([1.0], meta={"method": "DP", "problem": "laplace"})
        b = _trace([1.0], meta={"method": "DAL", "problem": "laplace"})
        devs = diff_traces(a, b)
        assert [(d.kind, d.field) for d in devs] == [("meta", "method")]

    def test_extra_candidate_meta_ignored(self):
        a = _trace([1.0])
        b = _trace([1.0])
        b.set_meta(hostname="ci-runner-7", wall_time_s=1.23)
        assert diff_traces(a, b) == []

    def test_solver_event_sequence_exact(self):
        a, b = _trace([1.0]), _trace([1.0])
        a.solver_event("lu", "factorize", n=100)
        b.solver_event("lu", "solve", n=100)
        devs = diff_traces(a, b)
        assert [(d.kind, d.field) for d in devs] == [("solver", "event")]

    def test_cache_counters_exact(self):
        a, b = _trace([1.0]), _trace([1.0])
        a.cache_stats("lu-cache", 49, 1)
        b.cache_stats("lu-cache", 48, 2)
        devs = diff_traces(a, b)
        assert [(d.kind, d.field) for d in devs] == [("cache", "lu-cache")]

    def test_cache_missing_on_one_side(self):
        a, b = _trace([1.0]), _trace([1.0])
        a.cache_stats("lu-cache", 49, 1)
        devs = diff_traces(a, b)
        assert len(devs) == 1 and devs[0].candidate is None


class TestRelativeFields:
    def test_cost_within_rtol_passes(self):
        a = _trace([1.0, 0.5])
        b = _trace([1.0 * (1 + 1e-8), 0.5])
        assert diff_traces(a, b) == []

    def test_cost_beyond_rtol_fails(self):
        devs = diff_traces(_trace([1.0]), _trace([1.0 + 1e-4]))
        # grad_norm tracks |cost| in the helper, so both fields move.
        assert [d.field for d in devs] == ["cost", "grad_norm"]

    def test_policy_overrides_widen_tolerance(self):
        loose = TolerancePolicy(cost_rtol=1e-2, grad_rtol=1e-2)
        assert diff_traces(_trace([1.0]), _trace([1.0 + 1e-4]), loose) == []

    def test_residual_uses_its_own_tolerance(self):
        a, b = _trace([1.0]), _trace([1.0])
        a.solver_event("lu", "solve", n=10, residual=1e-14)
        b.solver_event("lu", "solve", n=10, residual=2e-14)
        # 100 % relative difference but both tiny: atol=1e-10 absorbs it.
        assert diff_traces(a, b) == []
        a.solver_event("lu", "solve", n=10, residual=1e-3)
        b.solver_event("lu", "solve", n=10, residual=2e-3)
        devs = diff_traces(a, b)
        assert [d.field for d in devs] == ["residual"]


class TestExcludedFields:
    def test_timings_never_compared(self):
        a, b = _trace([1.0, 0.5]), _trace([1.0, 0.5])
        # _trace gives both identical phases; now make them wildly differ.
        b._records[0] = b.iterations[0].__class__(
            iteration=0, cost=1.0, grad_norm=1.0, step_size=1e-2,
            phases={"grad": 99.0, "update": 42.0},
        )
        assert diff_traces(a, b) == []

    def test_solver_seconds_and_condition_excluded(self):
        a, b = _trace([1.0]), _trace([1.0])
        a.solver_event("lu", "factorize", n=10, seconds=0.1,
                       condition_estimate=1e4)
        b.solver_event("lu", "factorize", n=10, seconds=9.9,
                       condition_estimate=1e9)
        assert diff_traces(a, b) == []


class TestNaNSemantics:
    def test_nan_equals_nan(self):
        # A diverged baseline must accept a diverged candidate...
        nan = float("nan")
        assert diff_traces(_trace([1.0, nan]), _trace([1.0, nan])) == []

    def test_nan_vs_finite_is_a_deviation(self):
        # ...but a run that *stops* diverging is a behaviour change.
        nan = float("nan")
        devs = diff_traces(_trace([1.0, nan]), _trace([1.0, 0.5]))
        assert any(
            d.field == "cost" and math.isnan(d.baseline) for d in devs
        )

    def test_inf_must_match_sign(self):
        inf = float("inf")
        assert diff_traces(_trace([inf]), _trace([inf])) == []
        devs = diff_traces(_trace([inf]), _trace([-inf]))
        # grad_norm = |cost| = +inf on both sides, so only cost flags.
        assert [d.field for d in devs] == ["cost"]


class TestFormatting:
    def test_agreement_message(self):
        assert "0 out-of-tolerance" in format_diff([])

    def test_report_lists_each_deviation(self):
        devs = diff_traces(_trace([1.0, 2.0]), _trace([1.0, 3.0]))
        report = format_diff(devs)
        assert "out-of-tolerance field(s)" in report
        assert "iteration[1].cost" in report

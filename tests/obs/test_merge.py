"""Tests for merging per-worker observability shards."""

import json
import os

import pytest

from repro.obs.merge import (
    merge_chrome_traces,
    merge_metrics_payloads,
    merge_profile_artifacts,
    merge_snapshots,
    merge_trace_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import SpanProfiler
from repro.obs.recorder import TraceRecorder


def _trace_doc(pid, name, dur=1000.0, cat="phase", meta=None):
    return {
        "traceEvents": [
            {"ph": "X", "pid": pid, "tid": pid, "name": name,
             "cat": cat, "ts": 0.0, "dur": dur},
        ],
        "displayTimeUnit": "ms",
        "metadata": meta or {"pid": pid},
    }


class TestChromeTraceMerge:
    def test_events_concatenated_pids_kept(self):
        merged = merge_chrome_traces(
            [_trace_doc(100, "a"), _trace_doc(200, "b")], meta={"run": "x"}
        )
        events = merged["traceEvents"]
        assert [e["pid"] for e in events] == [100, 200]
        assert merged["metadata"]["run"] == "x"
        assert [m["pid"] for m in merged["metadata"]["merged_from"]] == [100, 200]


class TestMetricsPayloadMerge:
    def _payload(self, pid, n, phase=1.0):
        reg = MetricsRegistry()
        reg.counter("events").inc(n)
        return {
            "kind": "repro.profile.metrics",
            "meta": {"pid": pid},
            "phase_seconds": {"train": phase},
            "spans": [{"name": "s", "category": "phase", "calls": 1,
                       "seconds": phase, "self_seconds": phase,
                       "rss_delta_kb": 4}],
            "metrics": reg.snapshot(),
        }

    def test_sums_phases_spans_metrics(self):
        merged = merge_metrics_payloads(
            [self._payload(1, 3, 1.0), self._payload(2, 4, 2.5)],
            meta={"run": "x"},
        )
        assert merged["kind"] == "repro.profile.metrics"
        assert merged["phase_seconds"]["train"] == pytest.approx(3.5)
        (row,) = merged["spans"]
        assert row["calls"] == 2
        assert row["seconds"] == pytest.approx(3.5)
        assert merged["metrics"]["events"]["value"] == 7
        assert [m["pid"] for m in merged["meta"]["merged_from"]] == [1, 2]

    def test_merge_snapshots_helper(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(1)
        b.counter("n").inc(2)
        assert merge_snapshots([a.snapshot(), b.snapshot()])["n"]["value"] == 3


class TestProfileArtifactFiles:
    def test_merge_profile_artifacts_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("n").inc(1)
        for i in (1, 2):
            with open(tmp_path / f"s{i}.trace.json", "w") as f:
                json.dump(_trace_doc(i, f"t{i}"), f)
            with open(tmp_path / f"s{i}.metrics.json", "w") as f:
                json.dump({"kind": "repro.profile.metrics", "meta": {},
                           "phase_seconds": {}, "spans": [],
                           "metrics": reg.snapshot()}, f)
        out = merge_profile_artifacts(
            [str(tmp_path / "s1.trace.json"), str(tmp_path / "s2.trace.json")],
            [str(tmp_path / "s1.metrics.json"), str(tmp_path / "s2.metrics.json")],
            str(tmp_path / "merged"),
        )
        assert sorted(os.path.basename(p) for p in out) == [
            "merged.metrics.json", "merged.trace.json",
        ]
        with open(tmp_path / "merged.trace.json") as f:
            assert len(json.load(f)["traceEvents"]) == 2
        with open(tmp_path / "merged.metrics.json") as f:
            assert json.load(f)["metrics"]["n"]["value"] == 2

    def test_empty_inputs_write_nothing(self, tmp_path):
        assert merge_profile_artifacts([], [], str(tmp_path / "m")) == []


class TestTraceJsonlMerge:
    def test_records_concatenated_header_carries_shard_meta(self, tmp_path):
        paths = []
        for i in (1, 2):
            rec = TraceRecorder(task=f"t{i}")
            rec.iteration(0, float(i), 0.1, 0.01)
            p = str(tmp_path / f"t{i}.jsonl")
            rec.to_jsonl(p)
            paths.append(p)
        out = str(tmp_path / "merged.jsonl")
        merge_trace_jsonl(paths, out, meta={"run": "x"})

        merged = TraceRecorder.from_jsonl(out)
        assert merged.meta["run"] == "x"
        shard_meta = merged.meta["merged_from"]
        assert [m["task"] for m in shard_meta] == ["t1", "t2"]
        assert [m["shard_file"] for m in shard_meta] == ["t1.jsonl", "t2.jsonl"]
        assert [r.cost for r in merged.iterations] == [1.0, 2.0]

    def test_empty_shard_rejected(self, tmp_path):
        p = tmp_path / "empty.jsonl"
        p.write_text("")
        with pytest.raises(ValueError, match="empty"):
            merge_trace_jsonl([str(p)], str(tmp_path / "out.jsonl"))


class TestProfilerAbsorb:
    def test_absorbed_events_appear_in_chrome_trace(self):
        prof = SpanProfiler()
        with prof.span("parent", "phase"):
            pass
        prof.absorb_chrome_trace(_trace_doc(999, "worker-span"))
        doc = prof.to_chrome_trace()
        names = [e.get("name") for e in doc["traceEvents"]]
        assert "worker-span" in names
        (ext,) = [e for e in doc["traceEvents"] if e.get("name") == "worker-span"]
        assert ext["pid"] == 999  # worker keeps its own track

    def test_absorbed_events_counted_in_summaries(self):
        prof = SpanProfiler()
        prof.absorb_chrome_trace(_trace_doc(7, "w", dur=2_000_000.0))
        assert prof.phase_seconds()["w"] == pytest.approx(2.0)
        (row,) = [r for r in prof.summary_rows() if r["name"] == "w"]
        assert row["calls"] == 1
        assert row["seconds"] == pytest.approx(2.0)

    def test_null_profiler_absorb_is_noop(self):
        from repro.obs.profile import NULL_PROFILER

        NULL_PROFILER.absorb_chrome_trace(_trace_doc(1, "x"))
        assert NULL_PROFILER.external_events() == []

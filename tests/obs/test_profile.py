"""Tests for the hierarchical span profiler."""

import json
import threading
import time

import pytest

from repro.obs.profile import (
    NULL_PROFILER,
    ProfileError,
    SpanProfiler,
    current_profiler,
    profiled,
    profiling,
    set_profiler,
    span,
)


class TestSpanTree:
    def test_nesting_builds_tree(self):
        prof = SpanProfiler()
        with prof.span("outer", "phase"):
            with prof.span("inner-a", "solver"):
                pass
            with prof.span("inner-b", "solver"):
                pass
        assert len(prof.roots) == 1
        root = prof.roots[0]
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner-a", "inner-b"]

    def test_seconds_and_self_seconds(self):
        prof = SpanProfiler()
        with prof.span("outer"):
            time.sleep(0.005)
            with prof.span("inner"):
                time.sleep(0.01)
        root = prof.roots[0]
        inner = root.children[0]
        assert root.seconds >= inner.seconds > 0.0
        assert root.self_seconds == pytest.approx(
            root.seconds - inner.seconds, abs=1e-12
        )

    def test_walk_is_depth_first(self):
        prof = SpanProfiler()
        with prof.span("a"):
            with prof.span("b"):
                with prof.span("c"):
                    pass
            with prof.span("d"):
                pass
        assert [s.name for s in prof.roots[0].walk()] == ["a", "b", "c", "d"]

    def test_attrs_kept(self):
        prof = SpanProfiler()
        with prof.span("s", "solver", {"n": 42}):
            pass
        assert prof.roots[0].attrs == {"n": 42}

    def test_phase_seconds_sums_per_name(self):
        prof = SpanProfiler()
        for _ in range(3):
            with prof.span("grad", "phase"):
                with prof.span("rbf.solve", "solver"):
                    pass
            with prof.span("update", "phase"):
                pass
        phases = prof.phase_seconds()
        assert set(phases) == {"grad", "update"}
        assert phases["grad"] > 0.0

    def test_summary_rows_aggregate(self):
        prof = SpanProfiler()
        for _ in range(4):
            with prof.span("grad", "phase"):
                pass
        rows = prof.summary_rows()
        assert len(rows) == 1
        assert rows[0]["name"] == "grad"
        assert rows[0]["calls"] == 4
        assert rows[0]["seconds"] >= rows[0]["self_seconds"] >= 0.0


class TestEdgeCases:
    def test_end_without_begin_raises(self):
        prof = SpanProfiler()
        with pytest.raises(ProfileError, match="no span is open"):
            prof.end()

    def test_non_lifo_close_raises(self):
        prof = SpanProfiler()
        outer = prof.begin("outer")
        prof.begin("inner")
        with pytest.raises(ProfileError, match="LIFO"):
            prof.end(outer)

    def test_exception_still_closes_span(self):
        prof = SpanProfiler()
        with pytest.raises(RuntimeError, match="boom"):
            with prof.span("failing"):
                raise RuntimeError("boom")
        assert prof.open_spans() == 0
        assert prof.roots[0].name == "failing"
        assert prof.roots[0].seconds >= 0.0

    def test_worker_thread_spans_get_own_track(self):
        prof = SpanProfiler()

        def work():
            with prof.span("worker-span"):
                pass

        with prof.span("main-span"):
            pass
        t = threading.Thread(target=work, name="rbf-worker")
        t.start()
        t.join()

        trace = prof.to_chrome_trace()
        thread_meta = {
            ev["args"]["name"]: ev["tid"]
            for ev in trace["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        assert "rbf-worker" in thread_meta
        by_name = {
            ev["name"]: ev for ev in trace["traceEvents"] if ev["ph"] == "X"
        }
        assert by_name["worker-span"]["tid"] == thread_meta["rbf-worker"]
        assert by_name["main-span"]["tid"] != by_name["worker-span"]["tid"]

    def test_track_rss_records_watermark_delta(self):
        prof = SpanProfiler(track_rss=True)
        with prof.span("alloc"):
            _ = bytearray(32 * 1024 * 1024)
        assert prof.roots[0].rss_delta_kb >= 0


class TestChromeTrace:
    def _check_schema(self, trace):
        assert isinstance(trace["traceEvents"], list)
        assert trace["displayTimeUnit"] == "ms"
        for ev in trace["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(ev)
            if ev["ph"] == "X":
                assert ev["ts"] >= 0.0 and ev["dur"] >= 0.0
                assert isinstance(ev["cat"], str) and ev["cat"]

    def test_empty_profile_is_valid(self):
        trace = SpanProfiler().to_chrome_trace()
        self._check_schema(trace)
        json.dumps(trace)  # must serialise

    def test_events_in_microseconds(self):
        prof = SpanProfiler()
        with prof.span("timed", "phase"):
            time.sleep(0.01)
        trace = prof.to_chrome_trace(meta={"method": "DP"})
        self._check_schema(trace)
        ev = [e for e in trace["traceEvents"] if e["ph"] == "X"][0]
        assert ev["dur"] >= 10_000  # >= 10 ms in µs
        assert trace["metadata"]["method"] == "DP"
        # Every Chrome-trace artifact carries the environment fingerprint.
        assert "python" in trace["metadata"]["env"]

    def test_metadata_env_never_clobbers_caller_keys(self):
        trace = SpanProfiler().to_chrome_trace(meta={"env": "mine"})
        assert trace["metadata"]["env"] == "mine"

    def test_save_roundtrip(self, tmp_path):
        prof = SpanProfiler()
        with prof.span("s"):
            pass
        path = tmp_path / "out.trace.json"
        prof.save_chrome_trace(path)
        self._check_schema(json.loads(path.read_text()))

    def test_save_html(self, tmp_path):
        prof = SpanProfiler()
        with prof.span("grad", "phase"):
            pass
        path = tmp_path / "report.html"
        prof.save_html(path, title="smoke")
        text = path.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "grad" in text


class TestModuleLevelAPI:
    def test_disabled_span_is_shared_noop(self):
        assert current_profiler() is None
        cm1 = span("anything", "phase")
        cm2 = span("else")
        assert cm1 is cm2  # the shared no-op instance
        with cm1:
            pass

    def test_profiling_context_installs_and_restores(self):
        assert current_profiler() is None
        with profiling() as prof:
            assert current_profiler() is prof
            with span("live", "phase"):
                pass
        assert current_profiler() is None
        assert prof.roots[0].name == "live"

    def test_set_profiler_returns_previous(self):
        prof = SpanProfiler()
        assert set_profiler(prof) is None
        try:
            assert current_profiler() is prof
        finally:
            assert set_profiler(None) is prof
        assert current_profiler() is None

    def test_null_profiler_is_falsy_noop(self):
        assert not NULL_PROFILER
        with NULL_PROFILER.span("x"):
            pass
        assert NULL_PROFILER.spans() == []
        assert NULL_PROFILER.phase_seconds() == {}
        assert NULL_PROFILER.summary_rows() == []

    def test_dynamic_decorator(self):
        calls = []

        @profiled("decorated.fn", "function")
        def fn(x):
            calls.append(x)
            return x * 2

        assert fn(3) == 6  # disabled: plain call
        with profiling() as prof:
            assert fn(4) == 8
        assert calls == [3, 4]
        assert [s.name for s in prof.roots] == ["decorated.fn"]
        assert prof.roots[0].category == "function"

    def test_instance_decorator(self):
        prof = SpanProfiler()

        @prof.profiled(category="solver")
        def assemble():
            return 1

        assert assemble() == 1
        assert prof.roots[0].category == "solver"
        assert "assemble" in prof.roots[0].name

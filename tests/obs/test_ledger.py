"""The performance ledger: store, metric extraction, comparator, snapshot."""

import json
import math

import pytest

from repro.obs.ledger import (
    ENTRY_KIND,
    LEDGER_SCHEMA,
    SNAPSHOT_KIND,
    DiffPolicy,
    LedgerError,
    MetricVerdict,
    PerformanceLedger,
    baseline_stats,
    build_entry,
    compare_entries,
    flatten_metrics,
    format_verdicts,
    metric_direction,
    run_metrics,
    validate_entry,
    write_snapshot,
)

FP = {"git_sha": "deadbeef", "python": "3.12.0", "env": {}}


def _entry(wall=1.0, suite="performance", digest="sha256:aaaa",
           scale="default", created=0.0, **metrics):
    runs = {"laplace_dp": {"wall_time_s": wall, "peak_mem_bytes": 1e6,
                           "final_cost": 1e-5, "iterations": 150.0,
                           **metrics}}
    return build_entry(
        suite=suite, runs=runs, fingerprint=FP, config_digest=digest,
        scale=scale, jobs=1, wall_time_s=wall, created_unix=created,
    )


class _FakeResult:
    wall_time_s = 2.5
    peak_mem_bytes = 1 << 20
    final_cost = 3e-4
    iterations = 60


class TestRunMetrics:
    def test_result_surface_alone(self):
        m = run_metrics(_FakeResult())
        assert m == {
            "wall_time_s": 2.5,
            "peak_mem_bytes": float(1 << 20),
            "final_cost": 3e-4,
            "iterations": 60.0,
        }

    def test_mines_the_obs_payload(self):
        obs = {
            "phase_seconds": {"grad": 1.5, "eval": 0.5},
            "metrics": {
                "krylov.iterations": {"kind": "counter", "value": 420.0},
                "codegen.fused_fraction": {"kind": "gauge", "value": 0.75},
                "cache.lu-cache.hits": {"kind": "gauge", "value": 90.0},
                "cache.lu-cache.misses": {"kind": "gauge", "value": 10.0},
                "cache.cold.hits": {"kind": "gauge", "value": 0.0},
                "cache.cold.misses": {"kind": "gauge", "value": 0.0},
            },
        }
        m = run_metrics(_FakeResult(), obs)
        assert m["phase_seconds"] == {"eval": 0.5, "grad": 1.5}
        assert m["solver_iterations"] == 420.0
        assert m["fused_fraction"] == 0.75
        # hit rate = hits / (hits + misses); never-used caches are dropped.
        assert m["cache_hit_rate"] == {"lu-cache": 0.9}

    def test_empty_obs_adds_nothing(self):
        assert "phase_seconds" not in run_metrics(_FakeResult(), {})


class TestEntryValidation:
    def test_build_entry_is_schema_valid(self):
        e = _entry()
        assert e["kind"] == ENTRY_KIND
        assert e["ledger_schema"] == LEDGER_SCHEMA
        assert validate_entry(e) == e

    def test_missing_keys_rejected(self):
        e = _entry()
        del e["fingerprint"]
        with pytest.raises(LedgerError, match="missing keys"):
            validate_entry(e)

    def test_wrong_kind_rejected(self):
        e = _entry()
        e["kind"] = "something.else"
        with pytest.raises(LedgerError, match="not a ledger entry"):
            validate_entry(e)

    def test_future_schema_rejected(self):
        e = _entry()
        e["ledger_schema"] = LEDGER_SCHEMA + 1
        with pytest.raises(LedgerError, match="not supported"):
            validate_entry(e)

    def test_empty_runs_rejected(self):
        e = _entry()
        e["runs"] = {}
        with pytest.raises(LedgerError, match="non-empty 'runs'"):
            validate_entry(e)

    def test_non_numeric_metric_rejected(self):
        e = _entry()
        e["runs"]["laplace_dp"]["wall_time_s"] = "fast"
        with pytest.raises(LedgerError, match="must be numeric"):
            validate_entry(e)

    def test_non_numeric_nested_rejected(self):
        e = _entry()
        e["runs"]["laplace_dp"]["phase_seconds"] = {"grad": "slow"}
        with pytest.raises(LedgerError, match="names to numbers"):
            validate_entry(e)


class TestPerformanceLedger:
    def test_append_and_entries_round_trip(self, tmp_path):
        store = PerformanceLedger(tmp_path / "ledger", "performance")
        assert store.entries() == []
        assert len(store) == 0
        store.append(_entry(wall=1.0, created=1.0))
        store.append(_entry(wall=1.1, created=2.0))
        entries = store.entries()
        assert len(entries) == 2
        assert [e["wall_time_s"] for e in entries] == [1.0, 1.1]
        # One JSON object per line — the file is greppable history.
        lines = (tmp_path / "ledger" / "performance.jsonl").read_text()
        assert all(json.loads(ln)["kind"] == ENTRY_KIND
                   for ln in lines.strip().splitlines())

    def test_append_validates(self, tmp_path):
        store = PerformanceLedger(tmp_path, "s")
        with pytest.raises(LedgerError):
            store.append({"kind": ENTRY_KIND})

    def test_corrupt_line_reported_with_location(self, tmp_path):
        store = PerformanceLedger(tmp_path, "s")
        store.append(_entry())
        with open(store.path, "a", encoding="utf-8") as f:
            f.write("{not json\n")
        with pytest.raises(LedgerError, match=r"s\.jsonl:2: invalid JSON"):
            store.entries()

    def test_suites_are_separate_files(self, tmp_path):
        a = PerformanceLedger(tmp_path, "performance")
        b = PerformanceLedger(tmp_path, "smoke")
        a.append(_entry())
        assert len(a) == 1
        assert len(b) == 0

    def test_torn_trailing_line_skipped_with_warning(self, tmp_path):
        # A writer that died mid-append leaves a final line with no
        # newline: readable history survives, the torn tail is skipped.
        store = PerformanceLedger(tmp_path, "s")
        store.append(_entry(wall=1.0, created=1.0))
        store.append(_entry(wall=2.0, created=2.0))
        with open(store.path, "a", encoding="utf-8") as f:
            f.write('{"kind": "repro.ledger.entry", "truncat')  # no \n
        with pytest.warns(RuntimeWarning, match="torn trailing line"):
            entries = store.entries()
        assert [e["wall_time_s"] for e in entries] == [1.0, 2.0]

    def test_complete_corrupt_last_line_still_raises(self, tmp_path):
        # Newline-terminated garbage is corruption, not a torn write.
        store = PerformanceLedger(tmp_path, "s")
        store.append(_entry())
        with open(store.path, "a", encoding="utf-8") as f:
            f.write("{not json\n")
        with pytest.raises(LedgerError, match=r"s\.jsonl:2"):
            store.entries()

    def test_torn_line_midfile_still_raises(self, tmp_path):
        # Only the *final* line gets torn-write forgiveness.
        store = PerformanceLedger(tmp_path, "s")
        with open(store.path, "w", encoding="utf-8") as f:
            f.write("{half\n")
        store.append(_entry())
        with pytest.raises(LedgerError, match=r"s\.jsonl:1"):
            store.entries()

    def test_concurrent_appends_land_whole(self, tmp_path):
        # Many threads hammering one ledger: every line must parse and
        # every entry must survive — the O_APPEND single-write contract.
        import threading

        store = PerformanceLedger(tmp_path, "s")
        n_threads, per_thread = 8, 25
        barrier = threading.Barrier(n_threads)

        def writer(tid):
            barrier.wait()
            for i in range(per_thread):
                store.append(_entry(wall=1.0 + tid, created=float(i)))

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        entries = store.entries()  # raises on any interleaved half-line
        assert len(entries) == n_threads * per_thread


class TestMetricDirection:
    @pytest.mark.parametrize("metric,category,worse", [
        ("laplace_dp/wall_time_s", "time", True),
        ("laplace_dp/phase_seconds.grad", "time", True),
        ("laplace_dp/peak_mem_bytes", "mem", True),
        ("laplace_dp/final_cost", "cost", True),
        ("laplace_dp/iterations", "count", True),
        ("ns_dal/solver_iterations", "count", True),
        ("laplace_dp/fused_fraction", "rate", False),
        ("laplace_dp/cache_hit_rate.lu-cache", "rate", False),
        ("serve/throughput_rps", "throughput", False),
        ("serve/latency_p95_s", "time", True),
    ])
    def test_classification(self, metric, category, worse):
        assert metric_direction(metric) == (category, worse)


class TestBaselineStats:
    def test_median_and_mad(self):
        med, sigma = baseline_stats([1.0, 2.0, 100.0])
        assert med == 2.0
        assert sigma == pytest.approx(1.4826 * 1.0)

    def test_single_value(self):
        assert baseline_stats([5.0]) == (5.0, 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one value"):
            baseline_stats([])


class TestCompareEntries:
    def test_no_history_is_new(self):
        (v,) = [x for x in compare_entries(_entry(), [])
                if x.metric.endswith("wall_time_s")]
        assert v.verdict == "new"
        assert v.baseline is None

    def test_honest_noise_is_neutral(self):
        history = [_entry(wall=1.0 + 0.03 * i, created=i) for i in range(5)]
        current = _entry(wall=1.10, created=9.0)
        verdicts = compare_entries(current, history)
        assert all(v.verdict == "neutral" for v in verdicts)

    def test_doubled_wall_time_regresses(self):
        history = [_entry(wall=1.0, created=i) for i in range(5)]
        verdicts = compare_entries(_entry(wall=2.0, created=9.0), history)
        by_name = {v.metric: v for v in verdicts}
        assert by_name["laplace_dp/wall_time_s"].verdict == "regressed"

    def test_halved_wall_time_improves(self):
        history = [_entry(wall=1.0, created=i) for i in range(5)]
        verdicts = compare_entries(_entry(wall=0.4, created=9.0), history)
        by_name = {v.metric: v for v in verdicts}
        assert by_name["laplace_dp/wall_time_s"].verdict == "improved"

    def test_rate_metrics_regress_downwards(self):
        # cache hit rate is higher-is-better: a drop regresses.
        history = [_entry(cache_hit_rate={"lu": 0.95}, created=i)
                   for i in range(5)]
        worse = _entry(cache_hit_rate={"lu": 0.50}, created=9.0)
        by_name = {v.metric: v for v in compare_entries(worse, history)}
        assert by_name["laplace_dp/cache_hit_rate.lu"].verdict == "regressed"
        better = _entry(cache_hit_rate={"lu": 1.0}, created=9.0)
        by_name = {v.metric: v for v in compare_entries(better, history)}
        assert by_name["laplace_dp/cache_hit_rate.lu"].verdict == "improved"

    def test_non_finite_value_always_regresses(self):
        history = [_entry(created=i) for i in range(3)]
        current = _entry(created=9.0)
        current["runs"]["laplace_dp"]["final_cost"] = math.nan
        by_name = {v.metric: v for v in compare_entries(current, history)}
        assert by_name["laplace_dp/final_cost"].verdict == "regressed"

    def test_config_digest_mismatch_excluded_from_baseline(self):
        # A differently-shaped run must never serve as a baseline.
        history = [_entry(wall=0.1, digest="sha256:bbbb", created=i)
                   for i in range(5)]
        verdicts = compare_entries(_entry(wall=2.0, created=9.0), history)
        assert all(v.verdict == "new" for v in verdicts)

    def test_scale_mismatch_excluded_from_baseline(self):
        history = [_entry(wall=0.1, scale="full", created=i) for i in range(5)]
        verdicts = compare_entries(_entry(wall=2.0, created=9.0), history)
        assert all(v.verdict == "new" for v in verdicts)

    def test_suite_mismatch_excluded(self):
        history = [_entry(wall=0.1, suite="smoke", created=i) for i in range(5)]
        verdicts = compare_entries(_entry(wall=2.0, created=9.0), history)
        assert all(v.verdict == "new" for v in verdicts)

    def test_history_window_limits_the_baseline(self):
        policy = DiffPolicy(history_window=3)
        # Old fast entries age out of the window; recent slow ones rule.
        history = ([_entry(wall=0.1, created=i) for i in range(10)]
                   + [_entry(wall=2.0, created=100 + i) for i in range(3)])
        verdicts = compare_entries(_entry(wall=2.0, created=999.0),
                                   history, policy)
        by_name = {v.metric: v for v in verdicts}
        v = by_name["laplace_dp/wall_time_s"]
        assert v.n_history == 3
        assert v.verdict == "neutral"

    @pytest.mark.parametrize("n_history", [1, 2])
    def test_short_history_is_neutral_with_note(self, n_history):
        # Below min_window even a 10x slowdown must stay neutral — one
        # noisy baseline run is not evidence — but the note says why.
        history = [_entry(wall=1.0, created=i) for i in range(n_history)]
        verdicts = compare_entries(_entry(wall=10.0, created=9.0), history)
        by_name = {v.metric: v for v in verdicts}
        v = by_name["laplace_dp/wall_time_s"]
        assert v.verdict == "neutral"
        assert v.note == "insufficient_history"
        assert v.n_history == n_history
        assert v.baseline == pytest.approx(1.0)
        assert v.to_dict()["note"] == "insufficient_history"
        # and format_verdicts renders it without a threshold
        assert "insufficient_history" in format_verdicts(verdicts)

    def test_min_window_boundary_issues_real_verdicts(self):
        history = [_entry(wall=1.0, created=i) for i in range(3)]
        verdicts = compare_entries(_entry(wall=10.0, created=9.0), history)
        by_name = {v.metric: v for v in verdicts}
        v = by_name["laplace_dp/wall_time_s"]
        assert v.verdict == "regressed"
        assert v.note is None

    def test_min_window_configurable(self):
        policy = DiffPolicy(min_window=1)
        history = [_entry(wall=1.0, created=0.0)]
        verdicts = compare_entries(_entry(wall=10.0, created=9.0),
                                   history, policy)
        by_name = {v.metric: v for v in verdicts}
        assert by_name["laplace_dp/wall_time_s"].verdict == "regressed"

    def test_verdicts_sorted_regressions_first(self):
        history = [_entry(wall=1.0, created=i) for i in range(5)]
        verdicts = compare_entries(_entry(wall=3.0, created=9.0), history)
        assert verdicts[0].verdict == "regressed"

    def test_delta_property(self):
        v = MetricVerdict("m", "neutral", 1.5, baseline=1.0)
        assert v.delta == pytest.approx(0.5)
        assert MetricVerdict("m", "new", 1.5).delta is None


class TestFlattenMetrics:
    def test_scalars_and_nested(self):
        flat = flatten_metrics(_entry(phase_seconds={"grad": 0.5}))
        assert flat["laplace_dp/wall_time_s"] == 1.0
        assert flat["laplace_dp/phase_seconds.grad"] == 0.5


class TestFormatVerdicts:
    def test_tally_head_and_rows(self):
        history = [_entry(wall=1.0, created=i) for i in range(5)]
        text = format_verdicts(
            compare_entries(_entry(wall=2.0, created=9.0), history)
        )
        assert text.startswith("1 regressed")
        assert "laplace_dp/wall_time_s" in text
        assert "+100.0%" in text

    def test_empty(self):
        assert format_verdicts([]) == "no metrics to compare"


class TestWriteSnapshot:
    def test_snapshot_document(self, tmp_path):
        entries = [_entry(wall=1.0 + i, created=i) for i in range(3)]
        verdicts = compare_entries(entries[-1], entries[:-1])
        path = tmp_path / "BENCH_performance.json"
        doc = write_snapshot(str(path), entries, verdicts)
        on_disk = json.loads(path.read_text())
        assert on_disk == doc
        assert doc["kind"] == SNAPSHOT_KIND
        assert doc["n_entries"] == 3
        assert doc["latest"]["wall_time_s"] == 3.0
        assert doc["history"]["laplace_dp/wall_time_s"] == [1.0, 2.0, 3.0]
        assert doc["verdicts"] and all("verdict" in v for v in doc["verdicts"])

    def test_empty_ledger_rejected(self, tmp_path):
        with pytest.raises(LedgerError, match="empty ledger"):
            write_snapshot(str(tmp_path / "x.json"), [])

"""Fault-injection and determinism tests for the parallel task engine.

Worker helpers live at module level so they survive any multiprocessing
start method.  Fault tests keep payloads tiny (the point is the engine's
classification, not the work), and every test runs with a short timeout
so a scheduler bug fails fast instead of hanging the suite.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.parallel import (
    STATUS_CRASHED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    ParallelEngine,
    Task,
    TaskError,
    derive_seed,
    resolve_jobs,
    run_tasks,
)
from repro.parallel.worker import WORKER_ENV


# ----------------------------------------------------------------------
# Worker payloads
# ----------------------------------------------------------------------
def _square(x):
    return x * x


def _draw(n):
    """Expose the process-global RNG the engine seeds per task."""
    return np.random.random(n).tolist()


def _boom():
    raise ValueError("intentional failure")


def _sigkill_self():
    os.kill(os.getpid(), signal.SIGKILL)


def _hang_forever():
    time.sleep(300)


def _freeze_self():
    """Stop the whole process — even the heartbeat thread goes silent.

    ``time.sleep`` would keep the daemon heartbeat thread alive (that is
    the point of a thread-based heartbeat: a busy-but-healthy worker
    still beats), so a genuine stall needs SIGSTOP.
    """
    os.kill(os.getpid(), signal.SIGSTOP)


def _return_unpicklable():
    return lambda: None


class _VenomousError(Exception):
    """Raises on pickle — the payload must still cross the pipe."""

    def __reduce__(self):
        raise TypeError("this exception refuses to pickle")


def _raise_unpicklable():
    raise _VenomousError("poison")


def _fail_until_marker(marker_path):
    """Fail on the first attempt, succeed once the marker exists."""
    if os.path.exists(marker_path):
        return "recovered"
    with open(marker_path, "w", encoding="utf-8") as f:
        f.write("1")
    raise RuntimeError("first attempt fails")


def _report_worker_env():
    return {"flag": os.environ.get(WORKER_ENV), "jobs": resolve_jobs(None)}


# ----------------------------------------------------------------------
# resolve_jobs
# ----------------------------------------------------------------------
class TestResolveJobs:
    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.delenv(WORKER_ENV, raising=False)
        assert resolve_jobs(None) == 1

    def test_cli_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert resolve_jobs(3) == 3

    def test_env_used_without_cli(self, monkeypatch):
        monkeypatch.delenv(WORKER_ENV, raising=False)
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs(None) == 4

    def test_worker_env_forces_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        monkeypatch.setenv(WORKER_ENV, "1")
        assert resolve_jobs(None) == 1

    def test_explicit_cli_overrides_worker_env(self, monkeypatch):
        monkeypatch.setenv(WORKER_ENV, "1")
        assert resolve_jobs(2) == 2

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.delenv(WORKER_ENV, raising=False)
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            resolve_jobs(None)

    def test_floor_is_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-3) == 1


# ----------------------------------------------------------------------
# Happy path + structure
# ----------------------------------------------------------------------
class TestRun:
    def test_results_in_input_order(self):
        tasks = [Task(key=f"t{i}", fn=_square, args=(i,)) for i in range(6)]
        results = run_tasks(tasks, jobs=3, timeout=60)
        assert [r.key for r in results] == [t.key for t in tasks]
        assert [r.value for r in results] == [i * i for i in range(6)]
        assert all(r.status == STATUS_OK for r in results)

    def test_result_record_fields(self):
        (r,) = run_tasks([Task(key="t", fn=_square, args=(3,))], jobs=2, timeout=60)
        assert r.ok and r.unwrap() == 9
        assert r.attempts == 1
        assert r.duration_s >= 0.0
        assert r.worker_pid is not None and r.worker_pid != os.getpid()
        assert r.seed == derive_seed(0, "t")
        d = r.to_dict()
        assert d["status"] == STATUS_OK and d["error"] is None

    def test_inline_when_jobs_one(self):
        (r,) = run_tasks([Task(key="t", fn=_square, args=(4,))], jobs=1)
        assert r.unwrap() == 16
        assert r.worker_pid == os.getpid()

    def test_empty_task_list(self):
        assert ParallelEngine(jobs=2).run([]) == []

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            ParallelEngine(jobs=2).run(
                [Task(key="t", fn=_square, args=(1,)),
                 Task(key="t", fn=_square, args=(2,))]
            )

    def test_worker_env_flag_set_and_nested_fanout_serial(self):
        (r,) = run_tasks([Task(key="t", fn=_report_worker_env)], jobs=2, timeout=60)
        assert r.unwrap() == {"flag": "1", "jobs": 1}


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_same_results_for_any_worker_count(self):
        tasks = [Task(key=f"d{i}", fn=_draw, args=(4,)) for i in range(5)]
        serial = run_tasks(tasks, jobs=1)
        pooled2 = run_tasks(tasks, jobs=2, timeout=60)
        pooled4 = run_tasks(tasks, jobs=4, timeout=60)
        for a, b, c in zip(serial, pooled2, pooled4):
            assert a.value == b.value == c.value
            assert a.seed == b.seed == c.seed

    def test_results_independent_of_submission_order(self):
        tasks = [Task(key=f"d{i}", fn=_draw, args=(4,)) for i in range(5)]
        fwd = {r.key: r.value for r in run_tasks(tasks, jobs=2, timeout=60)}
        rev = {r.key: r.value for r in run_tasks(tasks[::-1], jobs=2, timeout=60)}
        assert fwd == rev

    def test_retry_attempt_reseeded_identically(self, tmp_path):
        marker = str(tmp_path / "marker")
        (r,) = run_tasks(
            [Task(key="d", fn=_fail_until_marker, args=(marker,), retries=2)],
            jobs=2, timeout=60, backoff=0.01,
        )
        assert r.unwrap() == "recovered"
        # Seed identity: the successful retry used the same derived seed.
        assert r.seed == derive_seed(0, "d")


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
class TestFaultIsolation:
    def test_raising_worker_reports_error(self):
        tasks = [
            Task(key="ok", fn=_square, args=(2,)),
            Task(key="bad", fn=_boom),
        ]
        ok, bad = run_tasks(tasks, jobs=2, timeout=60)
        assert ok.unwrap() == 4
        assert bad.status == STATUS_ERROR
        assert bad.error["type"] == "ValueError"
        assert "intentional failure" in bad.error["message"]
        assert "ValueError" in bad.error["traceback"]
        with pytest.raises(TaskError, match="bad"):
            bad.unwrap()

    def test_sigkilled_worker_fails_only_its_task(self):
        tasks = [
            Task(key="ok1", fn=_square, args=(2,)),
            Task(key="dead", fn=_sigkill_self),
            Task(key="ok2", fn=_square, args=(3,)),
        ]
        ok1, dead, ok2 = run_tasks(tasks, jobs=3, timeout=60)
        assert ok1.unwrap() == 4 and ok2.unwrap() == 9
        assert dead.status == STATUS_CRASHED
        assert dead.error["type"] == "WorkerCrashed"
        assert "exited with code" in dead.error["message"]

    def test_hung_worker_times_out_and_is_killed(self):
        t0 = time.monotonic()
        tasks = [
            Task(key="hang", fn=_hang_forever, timeout=0.5),
            Task(key="ok", fn=_square, args=(5,)),
        ]
        hang, ok = run_tasks(tasks, jobs=2, timeout=60)
        assert ok.unwrap() == 25
        assert hang.status == STATUS_TIMEOUT
        assert hang.error["type"] == "TaskTimeout"
        assert time.monotonic() - t0 < 30  # killed, not awaited

    def test_unpicklable_return_value(self):
        (r,) = run_tasks([Task(key="t", fn=_return_unpicklable)], jobs=2,
                         timeout=60)
        assert r.status == STATUS_ERROR
        assert r.error["type"] == "UnpicklableResultError"

    def test_unpicklable_exception_payload(self):
        (r,) = run_tasks([Task(key="t", fn=_raise_unpicklable)], jobs=2,
                         timeout=60)
        assert r.status == STATUS_ERROR
        assert r.error["type"] == "_VenomousError"
        assert "poison" in r.error["message"]

    def test_retry_then_succeed(self, tmp_path):
        marker = str(tmp_path / "marker")
        (r,) = run_tasks(
            [Task(key="flaky", fn=_fail_until_marker, args=(marker,))],
            jobs=2, timeout=60, retries=3, backoff=0.01,
        )
        assert r.unwrap() == "recovered"
        assert r.attempts == 2

    def test_retries_exhausted_reports_last_failure(self):
        (r,) = run_tasks([Task(key="bad", fn=_boom)], jobs=2, timeout=60,
                         retries=2, backoff=0.01)
        assert r.status == STATUS_ERROR
        assert r.attempts == 3

    def test_inline_retry_then_succeed(self, tmp_path):
        marker = str(tmp_path / "marker")
        (r,) = run_tasks(
            [Task(key="flaky", fn=_fail_until_marker, args=(marker,))],
            jobs=1, retries=3, backoff=0.01,
        )
        assert r.unwrap() == "recovered"
        assert r.attempts == 2


# ----------------------------------------------------------------------
# Heartbeats
# ----------------------------------------------------------------------
class TestHeartbeat:
    def test_healthy_tasks_are_not_flagged(self):
        results = run_tasks(
            [Task(key=f"t{i}", fn=_square, args=(i,)) for i in range(3)],
            jobs=2, timeout=60, heartbeat=0.05,
        )
        assert all(r.status == STATUS_OK for r in results)
        assert all(r.stalled is False for r in results)
        assert all(r.to_dict()["stalled"] is False for r in results)

    def test_busy_sleeper_keeps_beating(self):
        # A slow-but-alive worker must NOT be flagged: the heartbeat
        # thread beats independently of the (sleeping) main thread.
        (r,) = run_tasks(
            [Task(key="slow", fn=time.sleep, args=(1.2,))],
            jobs=2, timeout=60, heartbeat=0.05, heartbeat_stall=0.4,
        )
        assert r.status == STATUS_OK
        assert r.stalled is False

    @pytest.mark.skipif(not hasattr(signal, "SIGSTOP"),
                        reason="needs SIGSTOP (POSIX)")
    def test_frozen_worker_flagged_before_hard_timeout(self, capfd):
        with use_registry(MetricsRegistry()) as reg:
            (r,) = run_tasks(
                [Task(key="frozen", fn=_freeze_self, timeout=3.0)],
                jobs=2, timeout=60, heartbeat=0.1, heartbeat_stall=0.5,
            )
            stalls = reg.counter("parallel.heartbeat_stalls").value
        # The heartbeat is an early-warning flag, never the executioner:
        # the hard timeout still decides the task's fate.
        assert r.status == STATUS_TIMEOUT
        assert r.stalled is True
        assert stalls == 1
        err = capfd.readouterr().err
        assert "heartbeat stale" in err
        assert "frozen" in err

    @pytest.mark.skipif(not hasattr(signal, "SIGSTOP"),
                        reason="needs SIGSTOP (POSIX)")
    def test_stall_flagged_once_per_attempt(self, capfd):
        (r,) = run_tasks(
            [Task(key="frozen", fn=_freeze_self, timeout=2.0)],
            jobs=2, timeout=60, heartbeat=0.1, heartbeat_stall=0.3,
        )
        assert r.stalled is True
        # ~1.7 s between flagging and the kill, polled every few ms —
        # a re-flagging bug would print dozens of warnings.
        assert capfd.readouterr().err.count("heartbeat stale") == 1

    def test_heartbeat_disabled_with_zero_interval(self):
        (r,) = run_tasks(
            [Task(key="t", fn=_square, args=(2,))],
            jobs=2, timeout=60, heartbeat=0.0,
        )
        assert r.unwrap() == 4
        assert r.stalled is False


# ----------------------------------------------------------------------
# Metrics integration
# ----------------------------------------------------------------------
class TestMetrics:
    def test_task_outcomes_recorded(self):
        with use_registry(MetricsRegistry()) as reg:
            run_tasks(
                [
                    Task(key="ok", fn=_square, args=(1,)),
                    Task(key="bad", fn=_boom),
                ],
                jobs=2, timeout=60,
            )
            snap = reg.snapshot()
        assert snap["parallel.tasks.ok"]["value"] == 1
        assert snap["parallel.tasks.error"]["value"] == 1
        assert snap["parallel.attempts"]["value"] == 2
        assert snap["parallel.task_seconds"]["count"] == 2

    def test_retries_counted(self, tmp_path):
        marker = str(tmp_path / "marker")
        with use_registry(MetricsRegistry()) as reg:
            run_tasks(
                [Task(key="flaky", fn=_fail_until_marker, args=(marker,))],
                jobs=2, timeout=60, retries=2, backoff=0.01,
            )
            snap = reg.snapshot()
        assert snap["parallel.retries"]["value"] == 1
        assert snap["parallel.attempts"]["value"] == 2

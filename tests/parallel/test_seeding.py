"""Tests for deterministic per-task seed derivation."""

import numpy as np

from repro.parallel.seeding import derive_seed, seed_everything


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "a") == derive_seed(0, "a")
        assert derive_seed(42, "omega=0.1") == derive_seed(42, "omega=0.1")

    def test_distinct_keys_distinct_seeds(self):
        seeds = {derive_seed(0, f"task-{i}") for i in range(200)}
        assert len(seeds) == 200

    def test_distinct_roots_distinct_seeds(self):
        assert derive_seed(0, "a") != derive_seed(1, "a")

    def test_range_is_63_bit(self):
        for i in range(50):
            s = derive_seed(i, "k")
            assert 0 <= s < 2**63

    def test_known_values_are_stable(self):
        # Pin the derivation: SHA-256, not Python's salted hash().  These
        # values must never change — golden shards and recorded artifacts
        # depend on them.
        assert derive_seed(0, "a") == int.from_bytes(
            __import__("hashlib").sha256(b"0|a").digest()[:8], "big"
        ) & ((1 << 63) - 1)

    def test_root_seed_coerced_to_int(self):
        assert derive_seed(True, "x") == derive_seed(1, "x")


class TestSeedEverything:
    def test_global_numpy_rng_reproducible(self):
        seed_everything(derive_seed(7, "t"))
        a = np.random.random(5)
        seed_everything(derive_seed(7, "t"))
        b = np.random.random(5)
        assert np.array_equal(a, b)

    def test_python_random_reproducible(self):
        import random

        seed_everything(123)
        a = [random.random() for _ in range(5)]
        seed_everything(123)
        b = [random.random() for _ in range(5)]
        assert a == b

    def test_large_seed_accepted(self):
        # 63-bit seeds exceed numpy's 32-bit legacy seed range; the helper
        # must fold them rather than raise.
        seed_everything((1 << 63) - 1)

"""Shared fixtures for the test suite.

Problem fixtures are session-scoped: building nodal operator matrices is
an O(N³) factorisation, and the control problems are immutable once
constructed, so sharing them keeps the suite fast without coupling tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.channel import ChannelCloud
from repro.cloud.square import SquareCloud
from repro.pde.laplace import LaplaceControlProblem
from repro.pde.navier_stokes import ChannelFlowProblem, NSConfig


def pytest_addoption(parser):
    parser.addoption(
        "--regen-goldens",
        action="store_true",
        default=False,
        help="rewrite the golden trace baselines in tests/goldens/ from "
        "the current build instead of comparing against them",
    )


@pytest.fixture(scope="session")
def regen_goldens(request):
    """True when the run should rebless golden baselines."""
    return request.config.getoption("--regen-goldens")


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def square_cloud_12():
    return SquareCloud(12)


@pytest.fixture(scope="session")
def square_cloud_16():
    return SquareCloud(16)


@pytest.fixture(scope="session")
def channel_cloud_small():
    return ChannelCloud(17, 9)


@pytest.fixture(scope="session")
def laplace_problem():
    """Small Laplace control problem (16×16 grid)."""
    return LaplaceControlProblem(SquareCloud(16))


@pytest.fixture(scope="session")
def laplace_problem_local():
    """Laplace control problem on the sparse (SuperLU) backend, whose
    multi-RHS solves are bitwise-identical per column — the backend the
    batched-vs-serial bit-identity gates run on."""
    return LaplaceControlProblem(SquareCloud(12), backend="local")


@pytest.fixture(scope="session")
def channel_problem():
    """Small channel-flow problem."""
    return ChannelFlowProblem(cloud=ChannelCloud(17, 9), perturbation=0.3)


@pytest.fixture(scope="session")
def ns_config_fast():
    """Cheap NS configuration for solver tests."""
    return NSConfig(reynolds=100.0, refinements=6, pseudo_dt=0.5)


# ----------------------------------------------------------------------
# Batching-rule conformance table (tests/autodiff/test_batching.py)
# ----------------------------------------------------------------------
# One row per (primitive, shape regime).  Every registered primitive must
# appear at least once — test_batching.py's completeness check compares
# the table's ``name`` column against the registry, so a new primitive
# cannot land without either a table row + rule or a declared fallback.
import zlib
from dataclasses import dataclass, field as _dc_field
from typing import Any, Callable, Optional, Tuple


@dataclass(frozen=True)
class BatchCase:
    """One conformance case for a registered batching primitive.

    ``fn`` is the single-item program (wrapped primitives only);
    ``make_args(rng, n)`` builds the argument list with batched operands
    already stacked along axis 0.  ``in_axes[i] == 0`` marks argument i
    as batched, ``None`` as closed-over; ``diff[i]`` marks it for the
    VJP-parity check.  Tolerances are absolute; 0.0 means bitwise.
    Const-operand cotangents accumulate in a different order than a
    serial loop (one ``np.sum`` vs N in-place adds), hence the separate
    ``const_grad_tol``.
    """

    label: str
    name: str
    fn: Callable
    make_args: Callable
    in_axes: Tuple
    diff: Tuple
    fwd_tol: float = 0.0
    grad_tol: float = 0.0
    const_grad_tol: float = 5e-12
    compileable: bool = True


def _case_rng(label: str):
    return np.random.default_rng(zlib.crc32(label.encode()))


def _build_batching_cases():
    from repro.autodiff import linalg, ops, sparse
    import scipy.sparse as sp

    C = []

    def add(label, name, fn, make_args, in_axes, diff, **kw):
        C.append(BatchCase(label, name, fn, make_args, in_axes, diff, **kw))

    # --- elementwise unary --------------------------------------------
    unary = {
        "neg": (ops.neg, (-3.0, 3.0)),
        "square": (ops.square, (-3.0, 3.0)),
        "sqrt": (ops.sqrt, (0.1, 9.0)),
        "abs": (ops.abs_, (-3.0, 3.0)),
        "exp": (ops.exp, (-2.0, 2.0)),
        "log": (ops.log, (0.1, 9.0)),
        "sin": (ops.sin, (-3.0, 3.0)),
        "cos": (ops.cos, (-3.0, 3.0)),
        "tanh": (ops.tanh, (-3.0, 3.0)),
        "sinh": (ops.sinh, (-2.0, 2.0)),
        "cosh": (ops.cosh, (-2.0, 2.0)),
        "arctan": (ops.arctan, (-3.0, 3.0)),
        "sigmoid": (ops.sigmoid, (-4.0, 4.0)),
    }
    for nm, (f, (lo, hi)) in unary.items():
        add(
            nm, nm, f,
            lambda rng, n, lo=lo, hi=hi: [rng.uniform(lo, hi, (n, 5, 3))],
            (0,), (True,),
        )
    add(
        "clip", "clip",
        lambda a: ops.clip(a, -1.0, 1.0),
        lambda rng, n: [rng.uniform(-3, 3, (n, 7))],
        (0,), (True,),
    )

    # --- elementwise binary (batched×batched and batched×const) -------
    binary = {
        "add": ops.add, "sub": ops.sub, "mul": ops.mul, "div": ops.div,
        "maximum": ops.maximum, "minimum": ops.minimum,
    }
    for nm, f in binary.items():
        add(
            f"{nm}:bb", nm, f,
            lambda rng, n: [rng.uniform(0.5, 3, (n, 4, 3)), rng.uniform(0.5, 3, (n, 4, 3))],
            (0, 0), (True, True),
        )
        add(
            f"{nm}:bc", nm, f,
            lambda rng, n: [rng.uniform(0.5, 3, (n, 4, 3)), rng.uniform(0.5, 3, (4, 3))],
            (0, None), (True, True),
        )
    add(  # rank-mismatched batched operands exercise _align_item_ranks
        "add:rank_pad", "add", ops.add,
        lambda rng, n: [rng.uniform(-1, 1, (n, 3)), rng.uniform(-1, 1, (n, 2, 3))],
        (0, 0), (True, True),
    )
    add(
        "power:bc", "power",
        lambda a, b: ops.power(a, b),
        lambda rng, n: [rng.uniform(0.5, 2.0, (n, 6)), 3.0],
        (0, None), (True, False),
    )
    add(
        "power:bb", "power", ops.power,
        lambda rng, n: [rng.uniform(0.5, 2.0, (n, 6)), rng.uniform(1.0, 2.0, (n, 6))],
        (0, 0), (True, True),
    )

    # --- where (const mask, and a traced comparison mask) -------------
    add(
        "where:const_mask", "where",
        lambda a, b: ops.where(np.arange(6) % 2 == 0, a, b),
        lambda rng, n: [rng.uniform(-1, 1, (n, 6)), rng.uniform(-1, 1, (n, 6))],
        (0, 0), (True, True),
    )
    add(
        "where:traced_mask", "where",
        lambda a, b: ops.where(a > 0.0, a, b),
        lambda rng, n: [rng.uniform(-1, 1, (n, 6)), rng.uniform(-1, 1, (n, 6))],
        (0, 0), (True, True),
    )

    # --- reductions ----------------------------------------------------
    for nm, f in (("sum", ops.sum_), ("mean", ops.mean), ("amax", ops.amax)):
        add(
            f"{nm}:all", nm, f,
            lambda rng, n: [rng.uniform(-2, 2, (n, 4, 3))],
            (0,), (True,),
        )
        add(
            f"{nm}:axis0", nm,
            lambda a, f=f: f(a, axis=0),
            lambda rng, n: [rng.uniform(-2, 2, (n, 4, 3))],
            (0,), (True,),
        )
        add(
            f"{nm}:neg_axis_keepdims", nm,
            lambda a, f=f: f(a, axis=-1, keepdims=True),
            lambda rng, n: [rng.uniform(-2, 2, (n, 4, 3))],
            (0,), (True,),
        )
    add(  # ties: the subgradient must pick the same elements per item
        "amax:ties", "amax",
        lambda a: ops.amax(a, axis=1),
        lambda rng, n: [rng.integers(0, 3, (n, 5, 4)).astype(np.float64)],
        (0,), (True,),
    )

    # --- views ---------------------------------------------------------
    add(
        "reshape", "reshape",
        lambda a: ops.reshape(a, (3, 4)),
        lambda rng, n: [rng.uniform(-1, 1, (n, 12))],
        (0,), (True,),
    )
    add(
        "transpose:default", "transpose", ops.transpose,
        lambda rng, n: [rng.uniform(-1, 1, (n, 3, 4))],
        (0,), (True,),
    )
    add(
        "transpose:perm", "transpose",
        lambda a: ops.transpose(a, (1, 2, 0)),
        lambda rng, n: [rng.uniform(-1, 1, (n, 2, 3, 4))],
        (0,), (True,),
    )
    add(
        "getitem:int", "getitem",
        lambda a: ops.getitem(a, 2),
        lambda rng, n: [rng.uniform(-1, 1, (n, 5))],
        (0,), (True,),
    )
    add(
        "getitem:slice", "getitem",
        lambda a: ops.getitem(a, slice(1, 4)),
        lambda rng, n: [rng.uniform(-1, 1, (n, 6, 2))],
        (0,), (True,),
    )
    add(
        "getitem:tuple", "getitem",
        lambda a: ops.getitem(a, (slice(None), 1)),
        lambda rng, n: [rng.uniform(-1, 1, (n, 4, 3))],
        (0,), (True,),
    )
    add(
        "getitem:fancy", "getitem",
        lambda a: ops.getitem(a, np.array([0, 2, 2])),
        lambda rng, n: [rng.uniform(-1, 1, (n, 5))],
        (0,), (True,),
    )

    # --- concatenate / stack -------------------------------------------
    add(
        "concatenate:bb", "concatenate",
        lambda a, b: ops.concatenate([a, b], axis=0),
        lambda rng, n: [rng.uniform(-1, 1, (n, 3, 2)), rng.uniform(-1, 1, (n, 4, 2))],
        (0, 0), (True, True),
    )
    add(
        "concatenate:bc", "concatenate",
        lambda a, b: ops.concatenate([a, b], axis=-1),
        lambda rng, n: [rng.uniform(-1, 1, (n, 3, 2)), rng.uniform(-1, 1, (3, 5))],
        (0, None), (True, True),
    )
    add(
        "stack:bb", "stack",
        lambda a, b: ops.stack([a, b], axis=1),
        lambda rng, n: [rng.uniform(-1, 1, (n, 3, 2)), rng.uniform(-1, 1, (n, 3, 2))],
        (0, 0), (True, True),
    )
    add(
        "stack:bc", "stack",
        lambda a, b: ops.stack([a, b], axis=0),
        lambda rng, n: [rng.uniform(-1, 1, (n, 4)), rng.uniform(-1, 1, (4,))],
        (0, None), (True, True),
    )

    # --- matmul: every (batchedness × item-rank) arrangement -----------
    mm = ops.matmul

    def mk(*specs):
        # spec: ("b"|"c", shape) — batched operands get the leading n.
        def make(rng, n):
            out = []
            for kind, shape in specs:
                full = (n,) + shape if kind == "b" else shape
                out.append(rng.uniform(-1, 1, full))
            return out
        return make

    matmul_cases = [
        ("b1@b1", (("b", (4,)), ("b", (4,)))),
        ("b1@b2", (("b", (4,)), ("b", (4, 3)))),
        ("b2@b1", (("b", (3, 4)), ("b", (4,)))),
        ("b2@b2", (("b", (3, 4)), ("b", (4, 2)))),
        ("b3@b1", (("b", (2, 3, 4)), ("b", (4,)))),
        ("b3@b2", (("b", (2, 3, 4)), ("b", (4, 2)))),
        ("b3@b2_col1", (("b", (2, 5, 4)), ("b", (4, 1)))),  # o=1 kernel switch
        ("b1@c1", (("b", (4,)), ("c", (4,)))),
        ("b1@c2", (("b", (4,)), ("c", (4, 3)))),
        ("b2@c1", (("b", (3, 4)), ("c", (4,)))),
        ("b2@c2", (("b", (3, 4)), ("c", (4, 2)))),
        ("b3@c2", (("b", (2, 3, 4)), ("c", (4, 2)))),
        ("c1@b1", (("c", (4,)), ("b", (4,)))),
        ("c1@b2", (("c", (4,)), ("b", (4, 3)))),
        ("c2@b1", (("c", (3, 4)), ("b", (4,)))),
        ("c2@b2", (("c", (3, 4)), ("b", (4, 2)))),
        ("c3@b1", (("c", (2, 3, 4)), ("b", (4,)))),
        ("c3@b2", (("c", (2, 3, 4)), ("b", (4, 2)))),
        ("c3@b2_col1", (("c", (2, 5, 4)), ("b", (4, 1)))),  # o=1 kernel switch
        ("b3@b3_punt", (("b", (2, 3, 4)), ("b", (2, 4, 2)))),  # loop fallback
    ]
    for label, specs in matmul_cases:
        add(
            f"matmul:{label}", "matmul", mm, mk(*specs),
            tuple(0 if k == "b" else None for k, _ in specs),
            (True, True),
        )

    # --- dense solve family --------------------------------------------
    def spd(rng, m):
        A = rng.standard_normal((m, m))
        return A + m * np.eye(m)

    add(
        "solve:vec", "solve", linalg.solve,
        lambda rng, n: [spd(rng, 6), rng.standard_normal((n, 6))],
        (None, 0), (True, True),
        fwd_tol=1e-10, grad_tol=1e-10,
    )
    add(
        "solve:mat_rhs", "solve", linalg.solve,
        lambda rng, n: [spd(rng, 5), rng.standard_normal((n, 5, 2))],
        (None, 0), (True, True),
        fwd_tol=1e-10, grad_tol=1e-10,
    )
    add(  # lstsq differentiates only b (documented restriction)
        "lstsq", "lstsq", linalg.lstsq,
        lambda rng, n: [rng.standard_normal((8, 4)), rng.standard_normal((n, 8))],
        (None, 0), (False, True),
        fwd_tol=1e-9, grad_tol=1e-9,
    )
    add(
        "lu_solve", "lu_solve",
        lambda solver, b: solver(b),
        lambda rng, n: [linalg.LUSolver(spd(rng, 6)), rng.standard_normal((n, 6))],
        (None, 0), (False, True),
        fwd_tol=1e-10, grad_tol=1e-10, compileable=False,
    )

    # --- sparse solve family (bitwise: SuperLU multi-RHS == per-col) ---
    def band(rng, m):
        d0 = rng.uniform(3.0, 4.0, m)
        d1 = rng.uniform(-1.0, 1.0, m - 1)
        return sp.diags([d1, d0, d1], [-1, 0, 1]).tocsr()

    add(
        "sparse_solve", "sparse_solve", sparse.sparse_solve,
        lambda rng, n: [band(rng, 7), rng.standard_normal((n, 7))],
        (None, 0), (False, True), compileable=False,
    )
    add(
        "sparse_lu_solve", "sparse_lu_solve",
        lambda solver, b: solver(b),
        lambda rng, n: [sparse.SparseLUSolver(band(rng, 7)), rng.standard_normal((n, 7))],
        (None, 0), (False, True), compileable=False,
    )
    add(
        "sparse_matvec", "sparse_matvec", sparse.sparse_matvec,
        lambda rng, n: [band(rng, 7), rng.standard_normal((n, 7))],
        (None, 0), (False, True), compileable=False,
    )

    def pattern_args(rng, n):
        m = 6
        A = band(rng, m).tocoo()
        return [
            A.row.astype(np.int64), A.col.astype(np.int64), (m, m),
            A.data.copy(), rng.standard_normal((n, m)),
        ]

    add(
        "sparse_pattern_solve", "sparse_pattern_solve",
        lambda rows, cols, shape, data, b:
            sparse.sparse_pattern_solve(rows, cols, shape, data, b),
        pattern_args,
        (None, None, None, None, 0), (False, False, False, True, True),
        compileable=False,
    )

    # --- iterative solve family (per-column == per-vector bitwise) -----
    from repro.autodiff import krylov

    add(
        "krylov_solve", "krylov_solve",
        lambda solver, b: solver(b),
        lambda rng, n: [
            krylov.KrylovSolver(band(rng, 7)), rng.standard_normal((n, 7)),
        ],
        (None, 0), (False, True), compileable=False,
    )
    add(
        "krylov_pattern_solve", "krylov_pattern_solve",
        lambda rows, cols, shape, data, b:
            krylov.krylov_pattern_solve(rows, cols, shape, data, b),
        pattern_args,
        (None, None, None, None, 0), (False, False, False, True, True),
        compileable=False,
    )
    return C


BATCHING_CASES = _build_batching_cases()


def pytest_generate_tests(metafunc):
    if "batch_case" in metafunc.fixturenames:
        metafunc.parametrize(
            "batch_case", BATCHING_CASES, ids=[c.label for c in BATCHING_CASES]
        )


@pytest.fixture(scope="session")
def batching_rule_table():
    """The full conformance table (for completeness/coverage checks)."""
    return BATCHING_CASES

"""Shared fixtures for the test suite.

Problem fixtures are session-scoped: building nodal operator matrices is
an O(N³) factorisation, and the control problems are immutable once
constructed, so sharing them keeps the suite fast without coupling tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.channel import ChannelCloud
from repro.cloud.square import SquareCloud
from repro.pde.laplace import LaplaceControlProblem
from repro.pde.navier_stokes import ChannelFlowProblem, NSConfig


def pytest_addoption(parser):
    parser.addoption(
        "--regen-goldens",
        action="store_true",
        default=False,
        help="rewrite the golden trace baselines in tests/goldens/ from "
        "the current build instead of comparing against them",
    )


@pytest.fixture(scope="session")
def regen_goldens(request):
    """True when the run should rebless golden baselines."""
    return request.config.getoption("--regen-goldens")


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def square_cloud_12():
    return SquareCloud(12)


@pytest.fixture(scope="session")
def square_cloud_16():
    return SquareCloud(16)


@pytest.fixture(scope="session")
def channel_cloud_small():
    return ChannelCloud(17, 9)


@pytest.fixture(scope="session")
def laplace_problem():
    """Small Laplace control problem (16×16 grid)."""
    return LaplaceControlProblem(SquareCloud(16))


@pytest.fixture(scope="session")
def channel_problem():
    """Small channel-flow problem."""
    return ChannelFlowProblem(cloud=ChannelCloud(17, 9), perturbation=0.3)


@pytest.fixture(scope="session")
def ns_config_fast():
    """Cheap NS configuration for solver tests."""
    return NSConfig(reynolds=100.0, refinements=6, pseudo_dt=0.5)

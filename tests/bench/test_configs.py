"""Tests for benchmark scale configuration."""

import os

import pytest

from repro.bench.configs import (
    DEFAULT_SCALE,
    FULL_SCALE,
    get_scale,
    is_full_scale,
)


class TestScaleSelection:
    def test_default_when_env_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert not is_full_scale()
        assert get_scale().name == "default"

    def test_full_when_env_set(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert is_full_scale()
        assert get_scale().name == "full"

    def test_falsy_values(self, monkeypatch):
        for v in ("0", "", "false", "False"):
            monkeypatch.setenv("REPRO_FULL", v)
            assert not is_full_scale()


class TestPaperAlignment:
    """The *full* tier must match the paper's printed hyperparameters."""

    def test_ns_refinements(self):
        assert FULL_SCALE.ns.refinements_dal == 3
        assert FULL_SCALE.ns.refinements_dp == 10

    def test_ns_iterations(self):
        assert FULL_SCALE.ns.iterations == 350

    def test_laplace_iterations(self):
        assert FULL_SCALE.laplace.iterations == 500

    def test_pinn_epochs(self):
        assert FULL_SCALE.pinn.laplace_epochs == 20000

    def test_pinn_omega_ranges(self):
        assert len(FULL_SCALE.pinn.laplace_omegas) == 11  # 1e-3 … 1e7
        assert len(FULL_SCALE.pinn.ns_omegas) == 9  # 1e-3 … 1e5

    def test_lr_values(self):
        assert DEFAULT_SCALE.laplace.lr_dal == 1e-2
        assert DEFAULT_SCALE.ns.lr == 1e-1
        assert FULL_SCALE.pinn.laplace_lr == 1e-3

    def test_default_tier_is_smaller(self):
        assert DEFAULT_SCALE.laplace.nx < FULL_SCALE.laplace.nx
        assert DEFAULT_SCALE.pinn.laplace_epochs < FULL_SCALE.pinn.laplace_epochs

"""Tests for benchmark scale configuration."""

import os

import pytest

from repro.bench.configs import (
    DEFAULT_SCALE,
    FULL_SCALE,
    artifact_dir,
    get_scale,
    is_full_scale,
    ledger_dir,
    profile_dir,
    trace_dir,
    watchdog_enabled,
)


class TestScaleSelection:
    def test_default_when_env_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert not is_full_scale()
        assert get_scale().name == "default"

    def test_full_when_env_set(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert is_full_scale()
        assert get_scale().name == "full"

    def test_falsy_values(self, monkeypatch):
        for v in ("0", "", "false", "False"):
            monkeypatch.setenv("REPRO_FULL", v)
            assert not is_full_scale()


class TestArtifactDirPrecedence:
    """CLI flag > environment variable > disabled, for both artifact kinds."""

    def test_unset_everywhere_is_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)
        monkeypatch.delenv("REPRO_PROFILE_DIR", raising=False)
        monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
        assert trace_dir() is None
        assert profile_dir() is None
        assert ledger_dir() is None

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", "/tmp/traces")
        monkeypatch.setenv("REPRO_PROFILE_DIR", "/tmp/profiles")
        monkeypatch.setenv("REPRO_LEDGER_DIR", "/tmp/ledger")
        assert trace_dir() == "/tmp/traces"
        assert profile_dir() == "/tmp/profiles"
        assert ledger_dir() == "/tmp/ledger"

    def test_cli_flag_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", "/tmp/from-env")
        monkeypatch.setenv("REPRO_PROFILE_DIR", "/tmp/from-env")
        monkeypatch.setenv("REPRO_LEDGER_DIR", "/tmp/from-env")
        assert trace_dir("/tmp/from-cli") == "/tmp/from-cli"
        assert profile_dir("/tmp/from-cli") == "/tmp/from-cli"
        assert ledger_dir("/tmp/from-cli") == "/tmp/from-cli"

    def test_blank_values_mean_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE_DIR", "   ")
        monkeypatch.setenv("REPRO_LEDGER_DIR", "   ")
        assert profile_dir() is None
        assert ledger_dir() is None
        # An explicit empty CLI value also disables (and masks the env).
        monkeypatch.setenv("REPRO_PROFILE_DIR", "/tmp/from-env")
        monkeypatch.setenv("REPRO_LEDGER_DIR", "/tmp/from-env")
        assert profile_dir("") is None
        assert ledger_dir("") is None

    def test_shared_helper_directly(self, monkeypatch):
        monkeypatch.setenv("SOME_DIR", "/tmp/env")
        assert artifact_dir(None, "SOME_DIR") == "/tmp/env"
        assert artifact_dir("/tmp/cli", "SOME_DIR") == "/tmp/cli"
        assert artifact_dir("", "SOME_DIR") is None
        monkeypatch.delenv("SOME_DIR")
        assert artifact_dir(None, "SOME_DIR") is None


class TestWatchdogSwitch:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_WATCHDOG", raising=False)
        assert watchdog_enabled() is False

    def test_cli_flag_enables(self, monkeypatch):
        monkeypatch.delenv("REPRO_WATCHDOG", raising=False)
        assert watchdog_enabled(True) is True

    def test_env_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_WATCHDOG", "1")
        assert watchdog_enabled() is True

    def test_falsy_env_spellings(self, monkeypatch):
        for v in ("0", "", "false", "False"):
            monkeypatch.setenv("REPRO_WATCHDOG", v)
            assert watchdog_enabled() is False

    def test_cli_flag_overrides_falsy_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WATCHDOG", "0")
        assert watchdog_enabled(True) is True


class TestPaperAlignment:
    """The *full* tier must match the paper's printed hyperparameters."""

    def test_ns_refinements(self):
        assert FULL_SCALE.ns.refinements_dal == 3
        assert FULL_SCALE.ns.refinements_dp == 10

    def test_ns_iterations(self):
        assert FULL_SCALE.ns.iterations == 350

    def test_laplace_iterations(self):
        assert FULL_SCALE.laplace.iterations == 500

    def test_pinn_epochs(self):
        assert FULL_SCALE.pinn.laplace_epochs == 20000

    def test_pinn_omega_ranges(self):
        assert len(FULL_SCALE.pinn.laplace_omegas) == 11  # 1e-3 … 1e7
        assert len(FULL_SCALE.pinn.ns_omegas) == 9  # 1e-3 … 1e5

    def test_lr_values(self):
        assert DEFAULT_SCALE.laplace.lr_dal == 1e-2
        assert DEFAULT_SCALE.ns.lr == 1e-1
        assert FULL_SCALE.pinn.laplace_lr == 1e-3

    def test_default_tier_is_smaller(self):
        assert DEFAULT_SCALE.laplace.nx < FULL_SCALE.laplace.nx
        assert DEFAULT_SCALE.pinn.laplace_epochs < FULL_SCALE.pinn.laplace_epochs

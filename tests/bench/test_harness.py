"""Smoke tests for the benchmark runners at miniature scale."""

import dataclasses

import numpy as np
import pytest

from repro.bench.configs import (
    ExperimentScale,
    LaplaceScale,
    NavierStokesScale,
    PinnScale,
)
from repro.bench.harness import (
    make_laplace_problem,
    make_ns_problem,
    run_laplace_dal,
    run_laplace_dp,
    run_laplace_fd,
    run_laplace_pinn,
    run_ns_dal,
    run_ns_dp,
)

TINY = ExperimentScale(
    name="tiny",
    laplace=LaplaceScale(nx=12, iterations=25),
    ns=NavierStokesScale(nx=15, ny=8, iterations=8, refinements_dal=3,
                         refinements_dp=4, adjoint_refinements=10),
    pinn=PinnScale(
        laplace_epochs=60,
        laplace_omegas=(1e-1,),
        ns_epochs=40,
        ns_omegas=(1.0,),
        n_interior=40,
        n_boundary=8,
        laplace_hidden=(8,),
        ns_hidden=(8,),
    ),
)


@pytest.fixture(scope="module")
def lap_problem():
    return make_laplace_problem(TINY)


@pytest.fixture(scope="module")
def ns_problem():
    return make_ns_problem(TINY)


class TestLaplaceRunners:
    def test_dp(self, lap_problem):
        r = run_laplace_dp(lap_problem, TINY)
        assert r.method == "DP" and r.problem == "laplace"
        assert r.final_cost < r.cost_history[0]
        assert r.wall_time_s > 0 and r.peak_mem_bytes > 0
        assert len(r.cost_history) == TINY.laplace.iterations

    def test_dal(self, lap_problem):
        r = run_laplace_dal(lap_problem, TINY)
        assert r.final_cost < r.cost_history[0]

    def test_fd(self, lap_problem):
        r = run_laplace_fd(lap_problem, TINY, iterations=5)
        assert r.iterations == 5
        assert r.extra["n_evaluations"] > 5  # 2n+1 evals per iter

    def test_pinn(self, lap_problem):
        r = run_laplace_pinn(lap_problem, TINY)
        assert r.method == "PINN"
        assert r.extra["best_omega"] == 1e-1
        assert len(r.extra["step2_costs"]) == 1
        assert np.isfinite(r.final_cost)


class TestNSRunners:
    def test_dp(self, ns_problem):
        r = run_ns_dp(ns_problem, TINY)
        assert r.final_cost <= r.cost_history[0]
        assert r.extra["refinements"] == TINY.ns.refinements_dp

    def test_dal_records_final_not_best(self, ns_problem):
        r = run_ns_dal(ns_problem, TINY)
        assert r.final_cost == r.cost_history[-1]
        assert "best_cost" in r.extra

    def test_dp_reynolds_override(self, ns_problem):
        r = run_ns_dp(ns_problem, TINY, reynolds=10.0)
        assert r.extra["reynolds"] == 10.0

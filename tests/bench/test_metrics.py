"""Tests for run measurement."""

import numpy as np

from repro.bench.metrics import measure_run


class TestMeasureRun:
    def test_returns_result_time_memory(self):
        out, t, mem = measure_run(lambda: np.zeros(1_000_000).sum())
        assert out == 0.0
        assert t > 0.0
        assert mem > 5 * 2**20  # the 8 MB buffer was traced

    def test_propagates_exceptions(self):
        import pytest

        with pytest.raises(RuntimeError):
            measure_run(lambda: (_ for _ in ()).throw(RuntimeError("boom")))

"""Tests for the ``python -m repro.bench`` entry point."""

import json

import pytest

from repro.bench.__main__ import main
from repro.bench.configs import (
    ExperimentScale,
    LaplaceScale,
    PinnScale,
)

#: Small enough for test wall times, large enough that per-iteration
#: phase spans dominate the measured loop: below the default nx the
#: fixed per-iteration cost outside spans (~25 µs under tracemalloc)
#: eats a visible fraction of the wall time and the coverage assertion
#: turns flaky.
TINY_SCALE = ExperimentScale(
    name="tiny",
    laplace=LaplaceScale(nx=26, iterations=150),
    pinn=PinnScale(
        laplace_epochs=30,
        laplace_hidden=(8, 8),
        laplace_omegas=(1.0,),
        n_interior=60,
        n_boundary=12,
    ),
)


class TestCLI:
    def test_laplace_only_skip_pinn(self, capsys):
        rc = main(["--skip-pinn", "--problem", "laplace"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "TABLE 3" in out
        assert "laplace" in out
        assert "navier-stokes" not in out

    def test_invalid_problem_rejected(self):
        with pytest.raises(SystemExit):
            main(["--problem", "burgers"])

    def test_invalid_method_rejected(self):
        with pytest.raises(SystemExit):
            main(["--methods", "dal,magic"])

    def test_methods_subset(self, capsys, monkeypatch):
        monkeypatch.setattr("repro.bench.__main__.get_scale", lambda: TINY_SCALE)
        rc = main(["--methods", "dp", "--problem", "laplace"])
        assert rc == 0
        out = capsys.readouterr().out
        # Only the DP run line appears; DAL and PINN never execute (the
        # table still prints their columns, dashed out).
        assert "|   DP | J=" in out
        assert "|  DAL | J=" not in out
        assert "| PINN | J=" not in out


class TestProfileArtifacts:
    def test_profile_dir_writes_valid_artifacts(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr("repro.bench.__main__.get_scale", lambda: TINY_SCALE)
        out_dir = tmp_path / "prof"
        rc = main([
            "--methods", "dal,dp", "--problem", "laplace",
            "--profile-dir", str(out_dir),
        ])
        assert rc == 0

        for method in ("dal", "dp"):
            trace = json.loads((out_dir / f"laplace_{method}.trace.json").read_text())
            # traceEvents schema: every event has name/ph/pid/tid; complete
            # events carry non-negative µs timestamps and durations.
            assert isinstance(trace["traceEvents"], list) and trace["traceEvents"]
            for ev in trace["traceEvents"]:
                assert {"name", "ph", "pid", "tid"} <= set(ev)
                assert ev["ph"] in ("X", "M")
                if ev["ph"] == "X":
                    assert ev["ts"] >= 0.0 and ev["dur"] >= 0.0
            assert trace["metadata"]["method"] == method.upper()
            assert trace["metadata"]["problem"] == "laplace"

            metrics = json.loads(
                (out_dir / f"laplace_{method}.metrics.json").read_text()
            )
            assert metrics["kind"] == "repro.profile.metrics"
            wall = metrics["meta"]["wall_time_s"]
            phase_sum = sum(metrics["phase_seconds"].values())
            # The grad/eval/update phases partition the optimisation loop:
            # their sum must account for the measured wall time within 5 %.
            assert wall > 0.0
            assert abs(phase_sum - wall) / wall < 0.05
            # The migrated cache counters ride along in the snapshot.
            assert "cache.lu-cache.hits" in metrics["metrics"]

    def test_pinn_profile_artifacts(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr("repro.bench.__main__.get_scale", lambda: TINY_SCALE)
        out_dir = tmp_path / "prof"
        rc = main([
            "--methods", "pinn", "--problem", "laplace",
            "--profile-dir", str(out_dir),
        ])
        assert rc == 0
        trace = json.loads((out_dir / "laplace_pinn.trace.json").read_text())
        cats = {ev.get("cat") for ev in trace["traceEvents"] if ev["ph"] == "X"}
        assert "phase" in cats and "method" in cats
        metrics = json.loads((out_dir / "laplace_pinn.metrics.json").read_text())
        assert set(metrics["phase_seconds"]) >= {"grad", "update"}

    def test_profile_env_var_respected(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr("repro.bench.__main__.get_scale", lambda: TINY_SCALE)
        out_dir = tmp_path / "envprof"
        monkeypatch.setenv("REPRO_PROFILE_DIR", str(out_dir))
        rc = main(["--methods", "dp", "--problem", "laplace"])
        assert rc == 0
        assert (out_dir / "laplace_dp.trace.json").exists()


class TestLedger:
    def _run(self, tmp_path, extra=()):
        return main([
            "--methods", "dp", "--problem", "laplace",
            "--ledger-dir", str(tmp_path / "ledger"),
            "--suite", "test",
            "--ledger-snapshot", str(tmp_path / "BENCH_test.json"),
            *extra,
        ])

    def test_each_invocation_appends_one_valid_entry(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setattr("repro.bench.__main__.get_scale", lambda: TINY_SCALE)
        from repro.obs.ledger import PerformanceLedger

        store = PerformanceLedger(str(tmp_path / "ledger"), "test")
        assert self._run(tmp_path) == 0
        assert len(store.entries()) == 1  # entries() schema-validates
        assert self._run(tmp_path) == 0
        entries = store.entries()
        assert len(entries) == 2
        e = entries[-1]
        assert e["suite"] == "test"
        assert e["scale"] == "tiny"
        assert e["config_digest"].startswith("sha256:")
        assert "python" in e["fingerprint"]
        metrics = e["runs"]["laplace_dp"]
        assert metrics["wall_time_s"] > 0
        assert metrics["iterations"] == 150
        # --ledger-dir implies metric collection: phase timings and the
        # cache counters come along without --profile-dir.
        assert set(metrics["phase_seconds"]) >= {"grad", "update"}
        assert "lu-cache" in metrics["cache_hit_rate"]
        out = capsys.readouterr().out
        assert "ledger:" in out

    def test_snapshot_written_and_verdicts_printed(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setattr("repro.bench.__main__.get_scale", lambda: TINY_SCALE)
        assert self._run(tmp_path) == 0
        assert self._run(tmp_path) == 0
        snap = json.loads((tmp_path / "BENCH_test.json").read_text())
        assert snap["kind"] == "repro.bench.snapshot"
        assert snap["n_entries"] == 2
        assert "laplace_dp/wall_time_s" in snap["history"]
        assert len(snap["history"]["laplace_dp/wall_time_s"]) == 2
        # The second invocation is scored against the first.
        assert snap["verdicts"]
        assert all(v["verdict"] != "new" for v in snap["verdicts"])
        out = capsys.readouterr().out
        assert "laplace_dp/wall_time_s" in out

    def test_ledger_env_var_respected(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr("repro.bench.__main__.get_scale", lambda: TINY_SCALE)
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "envledger"))
        monkeypatch.chdir(tmp_path)  # default snapshot lands in the cwd
        rc = main(["--methods", "dp", "--problem", "laplace"])
        assert rc == 0
        assert (tmp_path / "envledger" / "performance.jsonl").exists()
        assert (tmp_path / "BENCH_performance.json").exists()
        capsys.readouterr()


class TestWatchdogFlag:
    def test_watchdog_flag_runs_clean_and_uninstalls(
        self, monkeypatch, capsys
    ):
        monkeypatch.setattr("repro.bench.__main__.get_scale", lambda: TINY_SCALE)
        from repro.obs.health import current_watchdog

        rc = main(["--methods", "dp", "--problem", "laplace", "--watchdog"])
        assert rc == 0
        assert current_watchdog() is None  # scoped install, restored
        # A healthy Laplace DP run raises no health events.
        assert "watchdog:" not in capsys.readouterr().err


class TestJobsFanOut:
    def test_jobs_matrix_matches_serial(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr("repro.bench.__main__.get_scale", lambda: TINY_SCALE)
        serial_dir, par_dir = tmp_path / "serial", tmp_path / "par"
        assert main(["--methods", "dal,dp", "--problem", "laplace",
                     "--trace-dir", str(serial_dir)]) == 0
        assert main(["--methods", "dal,dp", "--problem", "laplace",
                     "--trace-dir", str(par_dir), "--jobs", "2"]) == 0
        capsys.readouterr()

        from repro.obs import TolerancePolicy, TraceRecorder, diff_traces

        for stem in ("laplace_dal", "laplace_dp"):
            a = TraceRecorder.from_jsonl(str(serial_dir / f"{stem}.jsonl"))
            b = TraceRecorder.from_jsonl(str(par_dir / f"{stem}.jsonl"))
            assert diff_traces(a, b, TolerancePolicy()) == []

    def test_jobs_merges_artifacts(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr("repro.bench.__main__.get_scale", lambda: TINY_SCALE)
        trace_dir, prof_dir = tmp_path / "traces", tmp_path / "prof"
        rc = main([
            "--methods", "dal,dp", "--problem", "laplace", "--jobs", "2",
            "--trace-dir", str(trace_dir), "--profile-dir", str(prof_dir),
        ])
        assert rc == 0
        capsys.readouterr()

        merged_trace = json.loads((prof_dir / "bench_merged.trace.json").read_text())
        pids = {e["pid"] for e in merged_trace["traceEvents"] if e.get("ph") == "X"}
        assert len(pids) >= 2  # every worker keeps its own track
        merged_metrics = json.loads(
            (prof_dir / "bench_merged.metrics.json").read_text()
        )
        assert merged_metrics["kind"] == "repro.profile.metrics"
        assert len(merged_metrics["meta"]["merged_from"]) == 2

        from repro.obs import TraceRecorder

        merged = TraceRecorder.from_jsonl(str(trace_dir / "bench_merged.jsonl"))
        assert len(merged.meta["merged_from"]) == 2
        assert merged.iterations  # shard records made it across

    def test_jobs_single_entry_parallelises_line_search(self, monkeypatch, capsys):
        two_omega = ExperimentScale(
            name="tiny2",
            laplace=TINY_SCALE.laplace,
            pinn=PinnScale(
                laplace_epochs=30,
                laplace_hidden=(8, 8),
                laplace_omegas=(1e-1, 1.0),
                n_interior=60,
                n_boundary=12,
            ),
        )
        monkeypatch.setattr("repro.bench.__main__.get_scale", lambda: two_omega)
        serial = main(["--methods", "pinn", "--problem", "laplace"])
        out_serial = capsys.readouterr().out
        pooled = main(["--methods", "pinn", "--problem", "laplace",
                       "--jobs", "2"])
        out_pooled = capsys.readouterr().out
        assert serial == pooled == 0
        j = [ln for ln in out_serial.splitlines() if "| PINN | J=" in ln]
        k = [ln for ln in out_pooled.splitlines() if "| PINN | J=" in ln]
        # Identical cost and omega* — wall time may differ.
        assert j[0].split("| J=")[1].split("|")[0] == \
            k[0].split("| J=")[1].split("|")[0]
        assert ("omega*" in out_serial) and ("omega*" in out_pooled)
        assert out_serial.split("omega* = ")[1].split(")")[0] == \
            out_pooled.split("omega* = ")[1].split(")")[0]

"""Tests for the ``python -m repro.bench`` entry point."""

import pytest

from repro.bench.__main__ import main


class TestCLI:
    def test_laplace_only_skip_pinn(self, capsys):
        rc = main(["--skip-pinn", "--problem", "laplace"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "TABLE 3" in out
        assert "laplace" in out
        assert "navier-stokes" not in out

    def test_invalid_problem_rejected(self):
        with pytest.raises(SystemExit):
            main(["--problem", "burgers"])

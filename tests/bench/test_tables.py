"""Tests for table rendering."""

import numpy as np

from repro.bench.tables import (
    render_hyperparameter_table,
    render_performance_table,
    render_table,
)
from repro.control.problem import ControlResult


class TestRenderTable:
    def test_alignment_and_content(self):
        out = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "333" in lines[3]

    def test_title(self):
        out = render_table(["x"], [["1"]], title="TABLE 1")
        assert out.splitlines()[0] == "TABLE 1"


class TestHyperparameterTable:
    def test_na_hyphen(self):
        out = render_hyperparameter_table(
            "T", {"Epochs": {"PINN": "20k"}, "Iterations": {"DAL": "500", "DP": "500"}}
        )
        rows = out.splitlines()
        assert any("20k" in r and "-" in r for r in rows)


class TestPerformanceTable:
    def test_table3_shape(self):
        results = [
            ControlResult("DAL", "laplace", np.zeros(1), 4.6e-3, 500, 1.0, 10 * 2**20),
            ControlResult("DP", "laplace", np.zeros(1), 2.2e-9, 500, 0.5, 20 * 2**20),
            ControlResult("PINN", "laplace", np.zeros(1), 1.6e-2, 20000, 7.0, 5 * 2**20),
        ]
        out = render_performance_table(results, title="TABLE 3")
        assert "Final cost J" in out
        assert "2.20e-09" in out
        assert "Peak mem. (MiB)" in out

    def test_missing_method_renders_dash(self):
        results = [
            ControlResult("DP", "navier-stokes", np.zeros(1), 2.6e-4, 350, 1.0, 0)
        ]
        out = render_performance_table(results)
        assert "-" in out

"""Tests for the vbatch parity/speedup smoke gate."""

import json

import pytest

from repro.bench.batch_smoke import _default_min_speedup, main


class TestBatchSmoke:
    @pytest.mark.slow
    def test_gate_passes_and_writes_artifacts(self, tmp_path, capsys):
        rc = main([
            "--nx", "10", "--epochs", "30",
            "--omegas", "0.01", "1.0",
            "--n-controls", "6",
            "--min-speedup", "0",
            "--skip-conformance",  # the suite itself runs it; avoid nesting
            "--out-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "OK" in out
        assert "bit-identical" in out

        artifact = json.loads((tmp_path / "batch_speedup.json").read_text())
        assert artifact["kind"] == "repro.batch.smoke"
        assert artifact["bitwise_identical"] is True
        assert artifact["looped_seconds"] > 0
        assert artifact["batched_seconds"] > 0
        assert artifact["conformance"].startswith("skipped")
        trace = json.loads((tmp_path / "batch_smoke.trace.json").read_text())
        assert trace["traceEvents"]

    @pytest.mark.slow
    def test_unreachable_speedup_gate_fails(self, tmp_path, capsys):
        rc = main([
            "--nx", "8", "--epochs", "10",
            "--omegas", "0.1", "1.0",
            "--n-controls", "2",
            "--min-speedup", "1e9",
            "--skip-conformance",
            "--out-dir", str(tmp_path),
        ])
        captured = capsys.readouterr()
        assert rc == 1
        assert "below the" in captured.err
        # The artifact still records the honest measurement.
        artifact = json.loads((tmp_path / "batch_speedup.json").read_text())
        assert artifact["bitwise_identical"] is True
        assert artifact["min_speedup_gate"] == 1e9

    def test_default_gate_scales_with_cpus(self, monkeypatch):
        import repro.bench.batch_smoke as bs

        monkeypatch.setattr(bs.os, "cpu_count", lambda: 8)
        assert _default_min_speedup() == 2.0
        monkeypatch.setattr(bs.os, "cpu_count", lambda: 2)
        assert _default_min_speedup() == 1.2
        monkeypatch.setattr(bs.os, "cpu_count", lambda: 1)
        assert _default_min_speedup() == 0.0

"""Tests for the parallel-execution smoke gate."""

import json

import pytest

from repro.bench.parallel_smoke import _default_min_speedup, main


class TestParallelSmoke:
    @pytest.mark.slow
    def test_gate_passes_and_writes_artifacts(self, tmp_path, capsys):
        rc = main([
            "--jobs", "2", "--nx", "10", "--epochs", "30",
            "--omegas", "0.01", "1.0",
            "--min-speedup", "0",
            "--out-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "OK" in out

        artifact = json.loads((tmp_path / "parallel_speedup.json").read_text())
        assert artifact["kind"] == "repro.parallel.smoke"
        assert artifact["bitwise_identical"] is True
        assert artifact["jobs"] == 2
        assert artifact["serial_seconds"] > 0
        assert artifact["parallel_seconds"] > 0
        trace = json.loads((tmp_path / "parallel_smoke.trace.json").read_text())
        assert trace["traceEvents"]
        assert (tmp_path / "parallel_smoke.jsonl").exists()

    def test_jobs_must_exercise_pool(self):
        with pytest.raises(SystemExit):
            main(["--jobs", "1"])

    def test_default_gate_scales_with_cpus(self, monkeypatch):
        import repro.bench.parallel_smoke as ps

        monkeypatch.setattr(ps.os, "cpu_count", lambda: 8)
        assert _default_min_speedup() == 2.0
        monkeypatch.setattr(ps.os, "cpu_count", lambda: 2)
        assert _default_min_speedup() == 1.2
        monkeypatch.setattr(ps.os, "cpu_count", lambda: 1)
        assert _default_min_speedup() == 0.0

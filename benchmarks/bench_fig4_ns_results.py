"""FIGURE 4 — Navier–Stokes control results.

- (a) the problem geometry (cloud summary — the GMSH-substitute stats);
- (b) cost J vs iteration for DAL and DP (DAL fails, DP converges);
- (c) optimised inflow profiles per method vs the parabolic initial guess;
- (d) outflow profiles vs the parabolic target.
"""

import numpy as np
import pytest

from repro.bench.tables import render_table
from repro.pde.navier_stokes import NSConfig


@pytest.fixture(scope="module")
def problem(ns_problem_bench):
    return ns_problem_bench


@pytest.fixture(scope="module")
def runs(ns_runs):
    return ns_runs


def test_fig4a_geometry(problem, save_artifact, benchmark):
    c = problem.cloud
    geo = problem.geometry
    text = "\n".join(
        [
            "FIG 4a: channel geometry and cloud (GMSH substitute)",
            f"domain            = [0, {geo.lx}] x [0, {geo.ly}]",
            f"blowing/suction x = [{geo.seg_lo}, {geo.seg_hi}]",
            f"total nodes       = {c.n} (paper: 1385)",
            f"counts            = {c.counts()}",
            f"groups            = { {g: len(i) for g, i in c.groups.items()} }",
        ]
    )
    benchmark(lambda: None)
    save_artifact("fig4a_geometry.txt", text)
    assert {"blowing", "suction"} <= set(c.groups)


def test_fig4b_cost_histories(runs, save_artifact, benchmark):
    stride = max(len(runs["DP"].cost_history) // 15, 1)
    lines = ["FIG 4b: cost J vs iteration (DAL diverges/stalls, DP converges)"]
    for m in ("DAL", "DP"):
        h = runs[m].cost_history[::stride]
        lines.append(f"{m:>4s}: " + " ".join(f"{v:.2e}" for v in h))
    lines.append(
        f"PINN surrogate J = {runs['PINN'].extra['surrogate_cost']:.2e}"
    )
    lines.append(
        f"PINN control re-simulated with RBF solver: J = "
        f"{runs['PINN'].extra['physical_cost']:.2e}"
    )
    benchmark(lambda: None)
    save_artifact("fig4b_cost_histories.txt", "\n".join(lines))
    # DAL ends above DP by a wide margin (paper: 8.2e-2 vs 2.6e-4).
    assert runs["DAL"].final_cost > 5 * runs["DP"].final_cost


def test_fig4c_inflow_profiles(runs, problem, save_artifact, benchmark):
    y = problem.inflow_y
    init = problem.default_control()
    rows = [
        [f"{yi:.3f}", f"{init[i]:+.4f}"]
        + [f"{runs[m].control[i]:+.4f}" for m in ("DAL", "PINN", "DP")]
        for i, yi in enumerate(y)
    ]
    text = render_table(
        ["y", "initial (parabola)", "DAL", "PINN", "DP"],
        rows,
        title="FIG 4c: optimised inflow velocity profiles",
    )
    benchmark(lambda: None)
    save_artifact("fig4c_inflow_profiles.txt", text)
    # DP moved the control away from the initial guess.
    assert np.max(np.abs(runs["DP"].control - init)) > 1e-3


def test_fig4d_outflow_profiles(runs, problem, scale, save_artifact, benchmark):
    cfg = NSConfig(
        reynolds=scale.ns.reynolds,
        refinements=scale.ns.refinements_dp,
        pseudo_dt=scale.ns.pseudo_dt,
    )
    rows = []
    profiles = {}
    for m in ("DAL", "PINN", "DP"):
        st = problem.solve(runs[m].control, cfg)
        profiles[m] = st.u[problem.outflow]
    st0 = problem.solve(problem.default_control(), cfg)
    y = problem.outflow_y
    for i, yi in enumerate(y):
        rows.append(
            [f"{yi:.3f}", f"{problem.u_target[i]:.4f}",
             f"{st0.u[problem.outflow][i]:.4f}"]
            + [f"{profiles[m][i]:.4f}" for m in ("DAL", "PINN", "DP")]
        )
    text = render_table(
        ["y", "target", "uncontrolled", "DAL", "PINN", "DP"],
        rows,
        title="FIG 4d: outflow u-velocity vs parabolic target",
    )
    benchmark(lambda: None)
    save_artifact("fig4d_outflow_profiles.txt", text)
    # DP's outflow is closer to the target than the uncontrolled flow.
    err_dp = np.abs(profiles["DP"] - problem.u_target).max()
    err_0 = np.abs(st0.u[problem.outflow] - problem.u_target).max()
    assert err_dp < err_0

"""ABLATION — DP cost vs refinement count k (§4).

"DP as conceived in this study can be memory inefficient due to storage
and optimisation of a computational graph ... the computational
complexity scales super-linearly with the number of refinement steps k."
This ablation sweeps k and measures one DP gradient's wall time and peak
(tape) memory.
"""

import numpy as np
import pytest

from repro.bench.harness import make_ns_problem
from repro.bench.metrics import measure_run
from repro.bench.tables import render_table
from repro.control.dp import NavierStokesDP
from repro.pde.navier_stokes import NSConfig

KS = (2, 4, 8, 12)


@pytest.fixture(scope="module")
def sweep(scale):
    prob = make_ns_problem(scale)
    c = prob.default_control()
    out = []
    for k in KS:
        cfg = NSConfig(
            reynolds=scale.ns.reynolds, refinements=k, pseudo_dt=scale.ns.pseudo_dt
        )
        dp = NavierStokesDP(prob, cfg)
        (j, g), t, mem = measure_run(lambda: dp.value_and_grad(c))
        out.append((k, t, mem, j))
    return out


def test_refinement_sweep_table(sweep, save_artifact, benchmark):
    rows = [
        [str(k), f"{t * 1e3:.1f}", f"{mem / 2**20:.1f}", f"{j:.3e}"]
        for k, t, mem, j in sweep
    ]
    text = render_table(
        ["k", "grad time (ms)", "peak tape mem (MiB)", "J at initial c"],
        rows,
        title="ABLATION: DP gradient cost vs refinements k "
        "(paper: memory grows with k; k=10 used for DP, 45.3 GB at full scale)",
    )
    benchmark(lambda: None)
    save_artifact("ablation_refinements.txt", text)


def test_memory_grows_with_k(sweep, benchmark):
    benchmark(lambda: None)
    mems = [mem for _, _, mem, _ in sweep]
    assert mems[-1] > mems[0]


def test_time_grows_with_k(sweep, benchmark):
    benchmark(lambda: None)
    times = [t for _, t, _, _ in sweep]
    assert times[-1] > times[0]


def test_dp_gradient_per_k(scale, benchmark):
    """Timed benchmark of the k used in the paper's DP column."""
    prob = make_ns_problem(scale)
    cfg = NSConfig(
        reynolds=scale.ns.reynolds,
        refinements=scale.ns.refinements_dp,
        pseudo_dt=scale.ns.pseudo_dt,
    )
    dp = NavierStokesDP(prob, cfg)
    c = prob.default_control()
    j, g = benchmark(dp.value_and_grad, c)
    assert np.all(np.isfinite(g))

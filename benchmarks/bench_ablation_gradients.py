"""ABLATION — gradient accuracy (§4, footnote 11).

The paper calls DP's gradients "the gold standard" and notes classical
finite differences also gave accurate Navier–Stokes gradients.  This
ablation quantifies the hierarchy: relative error of each method's
gradient against a high-order FD reference, on both problems.
"""

import numpy as np
import pytest

from repro.bench.harness import make_laplace_problem, make_ns_problem
from repro.bench.tables import render_table
from repro.control.dal import LaplaceDAL, NavierStokesDAL
from repro.control.dp import LaplaceDP, NavierStokesDP
from repro.control.fd import FiniteDifferenceOracle
from repro.pde.navier_stokes import NSConfig


def rel_err(a, b):
    return float(np.linalg.norm(a - b) / np.linalg.norm(b))


@pytest.fixture(scope="module")
def laplace_grads(scale):
    prob = make_laplace_problem(scale)
    dp = LaplaceDP(prob)
    dal = LaplaceDAL(prob)
    fd = FiniteDifferenceOracle(dp.value, prob.zero_control(), eps=1e-6)
    c = prob.zero_control()
    _, g_dp = dp.value_and_grad(c)
    _, g_dal = dal.value_and_grad(c)
    _, g_fd = fd.value_and_grad(c)
    return g_dp, g_dal, g_fd


@pytest.fixture(scope="module")
def ns_grads(scale):
    prob = make_ns_problem(scale)
    cfg = NSConfig(
        reynolds=scale.ns.reynolds,
        refinements=4,
        pseudo_dt=scale.ns.pseudo_dt,
    )
    dp = NavierStokesDP(prob, cfg)
    dal = NavierStokesDAL(prob, cfg, adjoint_refinements=scale.ns.adjoint_refinements)
    fd = FiniteDifferenceOracle(dp.value, prob.default_control(), eps=1e-6)
    c = prob.default_control()
    _, g_dp = dp.value_and_grad(c)
    _, g_dal = dal.value_and_grad(c)
    _, g_fd = fd.value_and_grad(c)
    return g_dp, g_dal, g_fd


def test_gradient_accuracy_table(
    laplace_grads, ns_grads, save_artifact, benchmark
):
    rows = []
    for name, (g_dp, g_dal, g_fd) in (
        ("laplace", laplace_grads),
        ("navier-stokes", ns_grads),
    ):
        cos = g_dal @ g_fd / (np.linalg.norm(g_dal) * np.linalg.norm(g_fd))
        rows.append(
            [
                name,
                f"{rel_err(g_dp, g_fd):.2e}",
                f"{rel_err(g_dal, g_fd):.2e}",
                f"{cos:.4f}",
            ]
        )
    text = render_table(
        ["problem", "DP vs FD rel err", "DAL vs FD rel err", "cos(DAL, FD)"],
        rows,
        title="ABLATION: gradient accuracy vs central-difference reference",
    )
    benchmark(lambda: None)
    save_artifact("ablation_gradient_accuracy.txt", text)


def test_dp_is_gold_standard_laplace(laplace_grads, benchmark):
    g_dp, g_dal, g_fd = laplace_grads
    benchmark(lambda: None)
    assert rel_err(g_dp, g_fd) < 1e-6
    assert rel_err(g_dal, g_fd) > rel_err(g_dp, g_fd)


def test_dp_is_gold_standard_ns(ns_grads, benchmark):
    g_dp, g_dal, g_fd = ns_grads
    benchmark(lambda: None)
    assert rel_err(g_dp, g_fd) < 1e-5
    assert rel_err(g_dal, g_fd) > 1e-2  # the OTD gap at Re = 100


def test_fd_cost_scales_with_dimension(scale, benchmark):
    """FD needs 2n+1 evaluations — the reason it loses to DP at scale."""
    prob = make_laplace_problem(scale)
    dp = LaplaceDP(prob)
    fd = FiniteDifferenceOracle(dp.value, prob.zero_control())
    c = prob.zero_control()

    def one_grad():
        fd.n_evaluations = 0
        fd.value_and_grad(c)
        return fd.n_evaluations

    n_evals = benchmark(one_grad)
    assert n_evals == 2 * c.size + 1

"""Shared benchmark fixtures.

Each benchmark regenerates one table or figure of the paper at the active
scale tier (default: seconds-per-benchmark; ``REPRO_FULL=1``: closer to
paper scale), prints the rows/series, and writes them under
``benchmarks/artifacts/``.

The expensive end-to-end runs (one optimisation per method × problem) are
**session-scoped** so that Table 3 and Figures 1/3/4 — which all consume
the same six runs, exactly as in the paper — compute each run once.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.configs import get_scale
from repro.bench.harness import (
    make_laplace_problem,
    make_ns_problem,
    run_laplace_dal,
    run_laplace_dp,
    run_laplace_pinn,
    run_ns_dal,
    run_ns_dp,
    run_ns_pinn,
)

ARTIFACTS = pathlib.Path(__file__).parent / "artifacts"


@pytest.fixture(scope="session")
def scale():
    """The active experiment scale tier."""
    return get_scale()


@pytest.fixture(scope="session")
def save_artifact():
    """Write a named text artifact and echo it to the terminal."""
    ARTIFACTS.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = ARTIFACTS / name
        path.write_text(text + "\n")
        print(f"\n===== {name} =====\n{text}\n")

    return _save


@pytest.fixture(scope="session")
def laplace_problem_bench(scale):
    """The Laplace control problem shared by every Laplace benchmark."""
    return make_laplace_problem(scale)


@pytest.fixture(scope="session")
def ns_problem_bench(scale):
    """The channel-flow problem shared by every NS benchmark."""
    return make_ns_problem(scale)


@pytest.fixture(scope="session")
def laplace_runs(laplace_problem_bench, scale):
    """One optimisation run per method on Laplace (Table 3 / Fig. 3)."""
    return {
        "DAL": run_laplace_dal(laplace_problem_bench, scale),
        "DP": run_laplace_dp(laplace_problem_bench, scale),
        "PINN": run_laplace_pinn(laplace_problem_bench, scale),
    }


@pytest.fixture(scope="session")
def ns_runs(ns_problem_bench, scale):
    """One optimisation run per method on NS (Table 3 / Figs. 1, 4)."""
    return {
        "DAL": run_ns_dal(ns_problem_bench, scale),
        "DP": run_ns_dp(ns_problem_bench, scale),
        "PINN": run_ns_pinn(ns_problem_bench, scale),
    }

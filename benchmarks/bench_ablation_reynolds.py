"""ABLATION — Reynolds-number dependence of DAL (§3.2 / §4).

"We found that this problem is lessened with a reduced Re = 10 which led
to better solutions with DAL."  This ablation runs DAL at Re ∈ {10, 100}
and DP at both for reference, reporting the final costs.
"""

import numpy as np
import pytest

from repro.bench.harness import run_ns_dal, run_ns_dp
from repro.bench.tables import render_table


@pytest.fixture(scope="module")
def sweep(scale, ns_problem_bench):
    prob = ns_problem_bench
    out = {}
    for re in (10.0, 100.0):
        out[("DAL", re)] = run_ns_dal(prob, scale, reynolds=re)
        out[("DP", re)] = run_ns_dp(prob, scale, reynolds=re)
    return out


def test_reynolds_table(sweep, save_artifact, benchmark):
    rows = [
        [
            m,
            f"{re:g}",
            f"{sweep[(m, re)].cost_history[0]:.3e}",
            f"{sweep[(m, re)].final_cost:.3e}",
        ]
        for (m, re) in sorted(sweep)
    ]
    text = render_table(
        ["method", "Re", "initial J", "final J"],
        rows,
        title="ABLATION: DAL vs DP across Reynolds numbers "
        "(paper: DAL fails at Re=100, improves at Re=10)",
    )
    benchmark(lambda: None)
    save_artifact("ablation_reynolds.txt", text)


def test_dal_re10_beats_dal_re100(sweep, benchmark):
    benchmark(lambda: None)
    final10 = sweep[("DAL", 10.0)].final_cost
    final100 = sweep[("DAL", 100.0)].final_cost
    assert final10 < final100


def test_dal_actually_descends_at_re10(sweep, benchmark):
    benchmark(lambda: None)
    r = sweep[("DAL", 10.0)]
    assert r.extra["best_cost"] < r.cost_history[0]


def test_dp_robust_at_both_re(sweep, benchmark):
    """DP never degrades; at Re=100 (where there is room — at Re=10
    the uncontrolled flow is already near-optimal) it improves a lot."""
    benchmark(lambda: None)
    for re in (10.0, 100.0):
        r = sweep[("DP", re)]
        assert r.final_cost <= r.cost_history[0]
    r100 = sweep[("DP", 100.0)]
    assert r100.final_cost < r100.cost_history[0] * 0.6

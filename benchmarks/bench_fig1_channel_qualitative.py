"""FIGURE 1 — Qualitative channel-flow comparison.

The paper's opening figure shows the velocity fields produced by each
method's optimised control.  Mesh-free fields don't tabulate directly, so
this benchmark reports the quantitative summaries the figure conveys:
field magnitudes, the mid-channel cross-flow strength, divergence levels
(the "first principles" adherence), and the outflow mismatch per method —
including the PINN's surrogate-vs-physics gap the caption highlights.
"""

import numpy as np
import pytest

from repro.bench.tables import render_table
from repro.pde.navier_stokes import NSConfig


@pytest.fixture(scope="module")
def problem(ns_problem_bench):
    return ns_problem_bench


@pytest.fixture(scope="module")
def field_stats(problem, scale, ns_runs):
    cfg = NSConfig(
        reynolds=scale.ns.reynolds,
        refinements=max(scale.ns.refinements_dp, 10),
        pseudo_dt=scale.ns.pseudo_dt,
    )
    runs = ns_runs
    stats = {}
    nd = problem.nodal
    interior = problem.cloud.internal
    mid = interior[
        np.abs(problem.cloud.x[interior] - 0.5 * problem.geometry.lx).argsort()[:20]
    ]
    for m, r in runs.items():
        st = problem.solve(r.control, cfg)
        div = (nd.dx @ st.u + nd.dy @ st.v)[interior]
        stats[m] = {
            "max_u": np.max(st.u),
            "max_v_mid": np.max(np.abs(st.v[mid])),
            "max_div": np.max(np.abs(div)),
            "outflow_mismatch": np.abs(
                st.u[problem.outflow] - problem.u_target
            ).max(),
            "cost": problem.cost(st.u, st.v),
        }
    return stats


def test_fig1_field_summaries(field_stats, save_artifact, benchmark):
    rows = [
        [
            m,
            f"{s['max_u']:.3f}",
            f"{s['max_v_mid']:.3f}",
            f"{s['max_div']:.2e}",
            f"{s['outflow_mismatch']:.3e}",
            f"{s['cost']:.3e}",
        ]
        for m, s in field_stats.items()
    ]
    text = render_table(
        ["method", "max u", "max |v| mid-channel", "max |div u|",
         "outflow mismatch", "J (physical)"],
        rows,
        title="FIG 1: qualitative comparison (fields re-simulated with the "
        "reference RBF solver from each method's control)",
    )
    benchmark(lambda: None)
    save_artifact("fig1_channel_qualitative.txt", text)


def test_fig1_crossflow_present(field_stats, benchmark):
    """The blowing/suction cross-flow is visible mid-channel for every
    method (it is part of the physics, not the control)."""
    benchmark(lambda: None)
    for m, s in field_stats.items():
        assert s["max_v_mid"] > 0.005, m


def test_fig1_dp_best_physical_cost(field_stats, benchmark):
    """Re-simulated under the same physics, DP's control wins."""
    benchmark(lambda: None)
    assert field_stats["DP"]["cost"] <= field_stats["DAL"]["cost"]

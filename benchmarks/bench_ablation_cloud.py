"""ABLATION — point-cloud layout (§3.1).

"the PDE (7) was solved on a regular 100×100 grid, which resulted in
better conditioned collocation matrices compared with a scattered point
cloud of the same size."  This ablation quantifies that: conditioning and
solve accuracy for regular, Halton, and jittered clouds of equal size.
"""

import numpy as np
import pytest

from repro.bench.tables import render_table
from repro.cloud.neighbors import fill_distance, min_spacing
from repro.cloud.square import SquareCloud
from repro.pde.poisson import CASES, manufactured_poisson
from repro.rbf.conditioning import collocation_condition_number
from repro.rbf.solver import solve_pde

LAYOUTS = [("regular", None), ("halton", "halton"), ("jitter", "jitter")]


@pytest.fixture(scope="module")
def sweep(scale):
    nx = max(scale.laplace.nx // 2, 12)
    out = []
    for name, mode in LAYOUTS:
        cloud = SquareCloud(nx, scatter=mode, seed=0)
        cond = collocation_condition_number(cloud)
        u = solve_pde(cloud, manufactured_poisson(cloud, "trig"))
        err = float(np.max(np.abs(u - CASES["trig"].exact(cloud.points))))
        out.append(
            (
                name,
                cond,
                err,
                min_spacing(cloud.points),
                fill_distance(cloud.points),
            )
        )
    return out


def test_cloud_layout_table(sweep, save_artifact, benchmark):
    rows = [
        [name, f"{cond:.2e}", f"{err:.3e}", f"{sep:.4f}", f"{fill:.4f}"]
        for name, cond, err, sep, fill in sweep
    ]
    text = render_table(
        ["layout", "cond. number", "max solve error", "separation", "fill dist."],
        rows,
        title="ABLATION: regular grid vs scattered clouds of equal size",
    )
    benchmark(lambda: None)
    save_artifact("ablation_cloud_layout.txt", text)


def test_regular_grid_best_conditioned(sweep, benchmark):
    benchmark(lambda: None)
    conds = {name: c for name, c, *_ in sweep}
    assert conds["regular"] < conds["jitter"]


def test_all_layouts_solve_accurately(sweep, benchmark):
    benchmark(lambda: None)
    for name, _, err, *_ in sweep:
        assert err < 0.2, name

"""ABLATION — second-order optimisation on the quadratic Laplace problem.

The paper runs Adam for all three methods.  With DP's exact gradients
(and a linear PDE) the reduced Hessian is available too: one Gauss–Newton
step reaches the discrete minimiser exactly.  This ablation quantifies
the iteration/cost trade: Adam trajectory vs the one-shot Newton solve.
"""

import numpy as np
import pytest

from repro.bench.metrics import measure_run
from repro.bench.tables import render_table
from repro.control.dp import LaplaceDP
from repro.control.loop import optimize
from repro.control.newton import LaplaceGaussNewton


@pytest.fixture(scope="module")
def comparison(scale, laplace_problem_bench):
    prob = laplace_problem_bench
    dp = LaplaceDP(prob)
    (c_adam, hist), t_adam, _ = measure_run(
        lambda: optimize(dp, scale.laplace.iterations, scale.laplace.lr_dp)
    )
    (gn_result), t_newton, _ = measure_run(
        lambda: LaplaceGaussNewton(prob).solve()
    )
    c_newton, j_newton = gn_result
    return {
        "adam": (hist.best_cost, scale.laplace.iterations, t_adam, c_adam),
        "newton": (j_newton, 1, t_newton, c_newton),
    }


def test_newton_table(comparison, save_artifact, benchmark):
    rows = [
        [name, f"{j:.3e}", str(iters), f"{t * 1e3:.0f}"]
        for name, (j, iters, t, _) in comparison.items()
    ]
    text = render_table(
        ["optimiser", "final J", "iterations", "time (ms)"],
        rows,
        title="ABLATION: Adam (paper setup) vs one-shot Gauss-Newton on the "
        "quadratic Laplace problem (extension)",
    )
    benchmark(lambda: None)
    save_artifact("ablation_newton.txt", text)


def test_newton_reaches_exact_minimum(comparison, benchmark):
    benchmark(lambda: None)
    j_newton = comparison["newton"][0]
    assert j_newton < 1e-18


def test_newton_beats_adam_budget(comparison, benchmark):
    benchmark(lambda: None)
    j_adam = comparison["adam"][0]
    j_newton = comparison["newton"][0]
    assert j_newton < j_adam

def test_controls_agree(comparison, benchmark):
    """Both optimisers find the same (unique, convex) minimiser."""
    benchmark(lambda: None)
    c_adam = comparison["adam"][3]
    c_newton = comparison["newton"][3]
    assert np.max(np.abs(c_adam - c_newton)) < 0.05


def test_gauss_newton_setup_cost(laplace_problem_bench, benchmark):
    """Jacobian assembly + Cholesky — the price of second order."""
    benchmark(lambda: LaplaceGaussNewton(laplace_problem_bench).solve())

"""ABLATION — eager tape vs compiled replay on the DP hot loop.

The DP oracle re-executes the same computation graph at every optimiser
iteration: only the control values change, never the graph topology.  The
compiled replay engine (:mod:`repro.autodiff.compile`) exploits this by
tracing once and then re-running a linearised program over preallocated
buffers — no Tensor wrappers, no closure construction, no per-node dict
bookkeeping.  This ablation sweeps the Laplace DP problem over N and
times a single oracle evaluation (``value_and_grad``, i.e. one forward
solve + one adjoint sweep — the unit of work per optimiser iteration) in
both modes, then verifies the two modes drive the optimiser to the same
final cost.

Beyond N ≈ 400 the O(n²) back-substitutions of the cached-LU solver
dominate and the two modes converge — the replay engine removes Python
interpretation overhead, not LAPACK time — so the sweep targets the
overhead-bound regime that the paper's benchmark tiers run in.
"""

import time

import numpy as np
import pytest

from repro.autodiff.compile import compiled_value_and_grad
from repro.bench.tables import render_table
from repro.cloud.square import SquareCloud
from repro.control.dp import LaplaceDP
from repro.control.loop import optimize
from repro.pde.laplace import LaplaceControlProblem

SIZES = (6, 8, 10, 12)  # nx; N = nx**2 — the overhead-bound regime
OPT_ITERS = 40
TIMING_REPS = 300
TIMING_ROUNDS = 7


def _per_iter_time(oracle, c0: np.ndarray) -> float:
    """Best-of-rounds mean oracle-call time (one DP iteration's work)."""
    oracle.value_and_grad(c0)  # warm up: trace/compile, page in buffers
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        t0 = time.perf_counter()
        for _ in range(TIMING_REPS):
            oracle.value_and_grad(c0)
        best = min(best, (time.perf_counter() - t0) / TIMING_REPS)
    return best


@pytest.fixture(scope="module")
def compile_sweep():
    rng = np.random.default_rng(0)
    out = []
    for nx in SIZES:
        problem = LaplaceControlProblem(SquareCloud(nx))
        c0 = rng.normal(scale=0.1, size=problem.n_control)

        eager = LaplaceDP(problem)
        compiled = LaplaceDP(problem, compile=True)

        t_eager = _per_iter_time(eager, c0)
        t_comp = _per_iter_time(compiled, c0)

        _, hist_e = optimize(eager, OPT_ITERS, 1e-2)
        _, hist_c = optimize(compiled, OPT_ITERS, 1e-2)

        out.append({
            "n": problem.cloud.n,
            "t_eager": t_eager,
            "t_comp": t_comp,
            "cost_eager": hist_e.best_cost,
            "cost_comp": hist_c.best_cost,
        })
    return out


def test_ablation_compile_table(compile_sweep, save_artifact, benchmark):
    rows = []
    for r in compile_sweep:
        rows.append([
            str(r["n"]),
            f"{r['t_eager'] * 1e6:.1f}",
            f"{r['t_comp'] * 1e6:.1f}",
            f"{r['t_eager'] / r['t_comp']:.2f}x",
            f"{r['cost_eager']:.12e}",
            f"{abs(r['cost_eager'] - r['cost_comp']):.1e}",
        ])
    text = render_table(
        ["N", "eager us/iter", "compiled us/iter", "speedup",
         "final cost J", "|J diff|"],
        rows,
        title="ABLATION: LaplaceDP oracle (forward solve + adjoint sweep) "
        "per optimiser iteration, eager tape vs compiled replay",
    )
    text += (
        "\nTiming: best-of-{} rounds of {} oracle calls each.\n"
        "Replay removes Python-side graph interpretation; beyond N ~ 400\n"
        "the cached-LU back-substitutions (O(n^2) LAPACK time, identical\n"
        "in both modes) dominate and the curves converge.".format(
            TIMING_ROUNDS, TIMING_REPS
        )
    )
    benchmark(lambda: None)
    save_artifact("ablation_compile.txt", text)


def test_compiled_at_least_2x_at_largest_n(compile_sweep, benchmark):
    """Acceptance: >= 2x faster iteration at the largest benchmarked N."""
    benchmark(lambda: None)
    r = compile_sweep[-1]
    speedup = r["t_eager"] / r["t_comp"]
    assert speedup >= 2.0, f"N={r['n']}: speedup {speedup:.2f}x < 2.0x"


def test_final_cost_identical(compile_sweep, benchmark):
    """Replay must not change optimisation results (1e-10 relative)."""
    benchmark(lambda: None)
    for r in compile_sweep:
        scale = max(abs(r["cost_eager"]), 1e-30)
        assert abs(r["cost_eager"] - r["cost_comp"]) <= 1e-10 * scale, (
            f"N={r['n']}: |J_eager - J_compiled| = "
            f"{abs(r['cost_eager'] - r['cost_comp']):.3e}"
        )


def test_profile_report(save_artifact, benchmark):
    """Op-level replay profile: per-op time and buffer-reuse statistics."""
    problem = LaplaceControlProblem(SquareCloud(SIZES[-1]))
    oracle = LaplaceDP(problem, compile=True)
    vg = compiled_value_and_grad(oracle._cost_tensor, profile=True)
    rng = np.random.default_rng(1)
    for _ in range(50):
        vg(rng.normal(scale=0.1, size=problem.n_control))

    p = vg.profile
    reused = p.bytes_reused
    alloc = p.bytes_allocated
    frac = reused / max(reused + alloc, 1)
    lines = [
        f"Compiled replay profile — LaplaceDP, N = {problem.cloud.n}",
        f"traces: {p.n_traces}   replays: {p.n_replays}   "
        f"eager fallbacks: {p.n_eager_calls}",
        f"persistent buffers: {p.persistent_bytes / 2**10:.1f} KiB "
        f"(allocated once at trace time)",
        f"backward bytes reused in place: {reused / 2**20:.2f} MiB   "
        f"freshly allocated: {alloc / 2**20:.2f} MiB   "
        f"reuse fraction: {frac:.1%}",
        "",
        p.report(),
    ]
    benchmark(lambda: None)
    save_artifact("profile_compile_ops.txt", "\n".join(lines))

    assert p.n_traces == 1
    assert p.n_replays == 49
    assert reused > 0, "replay reported no buffer reuse"

"""TABLE 2 — Hyperparameter summary for the Navier–Stokes problem.

Regenerates the paper's Table 2 and benchmarks the per-iteration unit of
work of each method (one gradient / one epoch).
"""

import numpy as np

from repro.bench.configs import FULL_SCALE
from repro.bench.harness import make_ns_problem
from repro.bench.tables import render_hyperparameter_table
from repro.control.dal import NavierStokesDAL
from repro.control.dp import NavierStokesDP
from repro.control.pinn import NavierStokesPINN, PINNTrainConfig
from repro.nn.pytree import value_and_grad_tree
from repro.pde.navier_stokes import NSConfig


def _table_text(scale) -> str:
    s = scale
    cloud_size = str(s.ns.nx * s.ns.ny - (s.ns.nx - 2) * 0)  # nominal nx*ny
    rows = {
        "Init. learning rate": {
            "DAL": f"{s.ns.lr:g}",
            "PINN": f"{s.pinn.ns_lr:g}",
            "DP": f"{s.ns.lr:g}",
        },
        "Network architecture": {
            "PINN": "x".join(str(h) for h in s.pinn.ns_hidden)
        },
        "Epochs": {"PINN": str(s.pinn.ns_epochs)},
        "Iterations": {"DAL": str(s.ns.iterations), "DP": str(s.ns.iterations)},
        "Refinements k": {
            "DAL": str(s.ns.refinements_dal),
            "DP": str(s.ns.refinements_dp),
        },
        "Point cloud size": {m: cloud_size for m in ("DAL", "PINN", "DP")},
        "Max. polynomial degree n": {"DAL": "1", "DP": "1"},
    }
    return render_hyperparameter_table(
        f"TABLE 2 (scale tier: {s.name}; paper full-scale: 1385-node GMSH "
        "cloud, lr 1e-1/1e-3/1e-1, 5x50 MLP, 350 iters / 100k epochs, "
        "k=3 DAL / k=10 DP)",
        rows,
    )


def test_table2_render(scale, save_artifact, benchmark):
    text = _table_text(scale)
    benchmark(lambda: _table_text(scale))
    save_artifact("table2_ns_hyperparameters.txt", text)
    save_artifact("table2_ns_hyperparameters_full_tier.txt", _table_text(FULL_SCALE))
    assert "Refinements k" in text


def test_table2_dal_gradient_unit(scale, benchmark):
    prob = make_ns_problem(scale)
    cfg = NSConfig(
        reynolds=scale.ns.reynolds,
        refinements=scale.ns.refinements_dal,
        pseudo_dt=scale.ns.pseudo_dt,
    )
    dal = NavierStokesDAL(prob, cfg, adjoint_refinements=scale.ns.adjoint_refinements)
    c = prob.default_control()
    j, g = benchmark(dal.value_and_grad, c)
    assert np.isfinite(j)


def test_table2_dp_gradient_unit(scale, benchmark):
    prob = make_ns_problem(scale)
    cfg = NSConfig(
        reynolds=scale.ns.reynolds,
        refinements=scale.ns.refinements_dp,
        pseudo_dt=scale.ns.pseudo_dt,
    )
    dp = NavierStokesDP(prob, cfg)
    c = prob.default_control()
    j, g = benchmark(dp.value_and_grad, c)
    assert np.isfinite(j) and np.all(np.isfinite(g))


def test_table2_pinn_epoch_unit(scale, benchmark):
    prob = make_ns_problem(scale)
    cfg = PINNTrainConfig(
        epochs=1,
        lr=scale.pinn.ns_lr,
        n_interior=scale.pinn.n_interior,
        n_boundary=scale.pinn.n_boundary,
    )
    pinn = NavierStokesPINN(prob, state_hidden=scale.pinn.ns_hidden, config=cfg)
    params = pinn.init_params()
    vg = value_and_grad_tree(lambda p: pinn.loss(p, omega=1.0))
    val, _ = benchmark(vg, params)
    assert np.isfinite(val)

"""FIGURE 3 — Laplace control results.

Regenerates every panel's data series:

- (a) optimised control profiles c(x) for DAL/PINN/DP vs the analytic
  minimiser;
- (b) cost J vs iteration/epoch for the three methods;
- (c)–(e) the PINN ω line search: final losses, final costs and retrained
  costs per ω, and the selected ω*;
- (f), (g) the optimised DP state vs the analytic state and the absolute
  error.
"""

import numpy as np
import pytest

from repro.bench.tables import render_table
from repro.control.dp import LaplaceDP
from repro.pde.laplace import laplace_optimal_control


@pytest.fixture(scope="module")
def problem(laplace_problem_bench):
    return laplace_problem_bench


@pytest.fixture(scope="module")
def runs(laplace_runs):
    return laplace_runs


def test_fig3a_control_profiles(runs, problem, save_artifact, benchmark):
    x = problem.control_x
    exact = laplace_optimal_control(x)
    rows = [
        [f"{xi:.3f}", f"{exact[i]:+.4f}"]
        + [f"{runs[m].control[i]:+.4f}" for m in ("DAL", "PINN", "DP")]
        for i, xi in enumerate(x)
    ]
    text = render_table(
        ["x", "analytic c*", "DAL", "PINN", "DP"], rows, title="FIG 3a: controls"
    )
    benchmark(lambda: None)
    save_artifact("fig3a_control_profiles.txt", text)
    # DP and DAL track the analytic optimum at discretisation accuracy.
    assert np.max(np.abs(runs["DP"].control - exact)) < 0.2
    assert np.max(np.abs(runs["DAL"].control - exact)) < 0.2


def test_fig3b_cost_histories(runs, save_artifact, benchmark):
    stride = max(len(runs["DP"].cost_history) // 15, 1)
    lines = ["FIG 3b: cost J vs iteration (strided)"]
    for m in ("DAL", "DP"):
        h = runs[m].cost_history[::stride]
        lines.append(f"{m:>5s}: " + " ".join(f"{v:.2e}" for v in h))
    lines.append(
        "PINN (per-omega final costs): "
        + " ".join(f"{v:.2e}" for v in runs["PINN"].extra["step1_final_costs"])
    )
    benchmark(lambda: None)
    save_artifact("fig3b_cost_histories.txt", "\n".join(lines))
    # DP reaches the (joint-)lowest cost; DAL matches here because its
    # adjoint shares the discrete operators (see EXPERIMENTS.md), and
    # both beat the PINN by orders of magnitude.
    assert runs["DP"].final_cost <= runs["DAL"].final_cost * 1.5 + 1e-12
    assert runs["DP"].final_cost <= runs["PINN"].final_cost


def test_fig3cde_omega_line_search(runs, save_artifact, benchmark):
    pinn = runs["PINN"]
    omegas = pinn.extra["omegas"]
    rows = [
        [
            f"{w:g}",
            f"{pinn.extra['step1_final_losses'][i]:.3e}",
            f"{pinn.extra['step1_final_residuals'][i]:.3e}",
            f"{pinn.extra['step1_final_costs'][i]:.3e}",
            f"{pinn.extra['step2_costs'][i]:.3e}",
            "*" if w == pinn.extra["best_omega"] else "",
        ]
        for i, w in enumerate(omegas)
    ]
    text = render_table(
        ["omega", "step1 loss", "step1 residual", "step1 cost J",
         "step2 cost J", "selected"],
        rows,
        title="FIG 3c-e: two-step omega line search (paper: omega* = 1e-1 "
        "from 11 values 1e-3..1e7)",
    )
    benchmark(lambda: None)
    save_artifact("fig3cde_omega_line_search.txt", text)
    assert pinn.extra["best_omega"] in omegas
    # Larger omega must push the step-1 cost down (the trade-off panel).
    costs = pinn.extra["step1_final_costs"]
    assert costs[-1] <= costs[0]


def test_fig3fg_state_error(runs, problem, save_artifact, benchmark):
    dp = LaplaceDP(problem)
    u = dp.solve_state(runs["DP"].control)
    u_exact = problem.optimal_state()
    err = np.abs(u - u_exact)
    text = "\n".join(
        [
            "FIG 3f-g: optimised DP state vs analytic state",
            f"max|u|            = {np.abs(u_exact).max():.4f}",
            f"max abs error     = {err.max():.2e}",
            f"mean abs error    = {err.mean():.2e}",
            f"interior max err  = {err[problem.cloud.internal].max():.2e}",
        ]
    )
    benchmark(lambda: None)
    save_artifact("fig3fg_state_error.txt", text)
    assert err.max() < 0.2

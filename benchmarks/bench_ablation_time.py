"""ABLATION — DP through time (the "incorporate time" future work).

The heat-equation extension lets us measure how DP's gradient cost scales
with the number of *time steps* — the temporal analogue of the
refinement-count scaling of the Navier–Stokes ablation.  Because the
stepper reuses one cached LU factorisation, both the forward evolution
and the reverse sweep are O(steps · N²): the tape grows linearly in the
step count.
"""

import numpy as np
import pytest

from repro.bench.metrics import measure_run
from repro.bench.tables import render_table
from repro.cloud.square import SquareCloud
from repro.pde.heat import HeatConfig, HeatEquationProblem, heat_series_solution

STEP_COUNTS = (10, 20, 40, 80)


@pytest.fixture(scope="module")
def sweep():
    cloud = SquareCloud(14)
    out = []
    for n_steps in STEP_COUNTS:
        prob = HeatEquationProblem(
            cloud, HeatConfig(kappa=1.0, dt=2e-4, n_steps=n_steps, theta=0.5)
        )
        u_true = heat_series_solution(cloud.x, cloud.y, 0.0)
        target = prob.evolve(u_true).data
        c0 = np.zeros(cloud.n)
        (j, g), t, mem = measure_run(
            lambda: prob.misfit_value_and_grad(c0, target)
        )
        out.append((n_steps, t, mem, j, float(np.linalg.norm(g))))
    return out


def test_time_scaling_table(sweep, save_artifact, benchmark):
    rows = [
        [str(n), f"{t * 1e3:.1f}", f"{mem / 2**20:.2f}", f"{j:.3e}"]
        for n, t, mem, j, _ in sweep
    ]
    text = render_table(
        ["time steps", "grad time (ms)", "peak tape mem (MiB)", "misfit at c=0"],
        rows,
        title="ABLATION: DP-through-time gradient cost vs step count "
        "(heat equation, cached-LU stepper)",
    )
    benchmark(lambda: None)
    save_artifact("ablation_time.txt", text)


def test_tape_grows_with_steps(sweep, benchmark):
    benchmark(lambda: None)
    mems = [m for _, _, m, _, _ in sweep]
    assert mems[-1] > mems[0]


def test_gradients_finite_at_all_horizons(sweep, benchmark):
    benchmark(lambda: None)
    for n, _, _, j, gnorm in sweep:
        assert np.isfinite(j) and np.isfinite(gnorm), n


def test_single_step_gradient(benchmark):
    """The per-step unit of work (one taped triangular solve + VJP)."""
    cloud = SquareCloud(14)
    prob = HeatEquationProblem(cloud, HeatConfig(n_steps=1))
    target = np.zeros(cloud.n)
    c0 = heat_series_solution(cloud.x, cloud.y, 0.0)
    j, g = benchmark(prob.misfit_value_and_grad, c0, target)
    assert np.isfinite(j)

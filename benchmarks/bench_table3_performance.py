"""TABLE 3 — Performance details for DAL, PINN and DP on both problems.

Regenerates the paper's Table 3: wall time, peak memory, iteration/epoch
count and final cost for every method × problem at the active scale.
Absolute numbers differ from the paper (CPU vs their Ryzen/RTX-3090,
scaled budgets), but the comparison *shape* is asserted:

- Laplace: DP's final cost is orders of magnitude below DAL and PINN;
- Navier–Stokes: DP reaches the lowest cost, the PINN's control is usable,
  and DAL ends far above both (its Re = 100 failure);
- memory: DP's taped NS solve retains the whole computational graph and
  peaks well above DAL's tape-free loop.
"""

import numpy as np
import pytest

from repro.bench.tables import render_performance_table

PAPER_TABLE3 = """Paper values (full scale, their hardware):
  Laplace       : time 3.3h/7.3h*/1.65h, mem 33.6/5.0/20.2 GB,
                  final J 4.6e-3 / 1.6e-2 / 2.2e-9   (DAL/PINN/DP)
  Navier-Stokes : time 1.5h/26.8h*/3.8h, mem 8.1/1.3/45.3 GB,
                  final J 8.2e-2 / 1.0e-3 / 2.6e-4   (DAL/PINN/DP)
  (* PINN on an RTX 3090)"""


@pytest.fixture(scope="module")
def results(laplace_runs, ns_runs):
    return list(laplace_runs.values()) + list(ns_runs.values())


def test_table3_regenerate(results, scale, save_artifact, benchmark):
    text = render_performance_table(
        results, title=f"TABLE 3 (scale tier: {scale.name})"
    )
    benchmark(lambda: render_performance_table(results))
    save_artifact("table3_performance.txt", text + "\n\n" + PAPER_TABLE3)
    assert "Final cost J" in text


def _by(results, problem, method):
    return next(r for r in results if r.problem == problem and r.method == method)


def test_table3_laplace_dp_dominates(results, benchmark):
    """Paper: DP 2.2e-9 ≪ DAL 4.6e-3 ≪ PINN 1.6e-2 on Laplace.

    In this reproduction the DAL adjoint is discretised with the *same*
    nodal operators as the cost, so DAL converges essentially as deep as
    DP on Laplace (see EXPERIMENTS.md); the robust assertions are that DP
    matches DAL and both beat the PINN by orders of magnitude.
    """
    dp = _by(results, "laplace", "DP")
    dal = _by(results, "laplace", "DAL")
    pinn = _by(results, "laplace", "PINN")
    benchmark(lambda: None)
    assert dp.final_cost <= dal.final_cost * 1.5 + 1e-12
    assert dp.final_cost < pinn.final_cost
    assert dp.final_cost < 1e-4  # orders below the initial ~0.6


def test_table3_ns_ordering(results, benchmark):
    """Paper: NS final J — DAL 8.2e-2 > PINN 1.0e-3 > DP 2.6e-4."""
    dp = _by(results, "navier-stokes", "DP")
    dal = _by(results, "navier-stokes", "DAL")
    benchmark(lambda: None)
    assert dp.final_cost < dal.final_cost / 5


def test_table3_dp_memory_exceeds_dal_on_ns(results, benchmark):
    """Paper: DP 45.3 GB vs DAL 8.1 GB on NS (the taped graph)."""
    dp = _by(results, "navier-stokes", "DP")
    dal = _by(results, "navier-stokes", "DAL")
    benchmark(lambda: None)
    assert dp.peak_mem_bytes > dal.peak_mem_bytes


def test_table3_pinn_slowest_per_problem(results, benchmark):
    """Paper: the PINN's wall time dominates (7.3h and 26.8h columns)."""
    benchmark(lambda: None)
    for prob in ("laplace", "navier-stokes"):
        pinn = _by(results, prob, "PINN")
        dal = _by(results, prob, "DAL")
        assert pinn.wall_time_s > dal.wall_time_s

"""ABLATION — kernel choice (§3).

The paper picks the polyharmonic cubic spline r³ + degree-1 polynomials
"to avoid tuning [a shape] parameter", noting it "provided a robust and
performant tool".  This ablation solves the same manufactured Poisson
problem with every kernel and reports accuracy and conditioning — and the
shape-parameter sensitivity the paper's choice avoids.
"""

import numpy as np
import pytest

from repro.bench.tables import render_table
from repro.cloud.square import SquareCloud
from repro.pde.poisson import CASES, manufactured_poisson
from repro.rbf.conditioning import collocation_condition_number
from repro.rbf.kernels import gaussian, multiquadric, polyharmonic
from repro.rbf.solver import RBFSolver

KERNELS = [
    ("phs3 (paper)", polyharmonic(3)),
    ("phs5", polyharmonic(5)),
    ("gaussian eps=2", gaussian(2.0)),
    ("gaussian eps=6", gaussian(6.0)),
    ("multiquadric eps=2", multiquadric(2.0)),
]


@pytest.fixture(scope="module")
def sweep(scale):
    cloud = SquareCloud(max(scale.laplace.nx // 2, 12))
    prob = manufactured_poisson(cloud, "trig")
    exact = CASES["trig"].exact(cloud.points)
    out = []
    for name, kernel in KERNELS:
        solver = RBFSolver(cloud, kernel=kernel)
        u = solver.solve(prob)
        err = float(np.max(np.abs(u - exact)))
        cond = collocation_condition_number(cloud, kernel=kernel)
        out.append((name, err, cond))
    return out


def test_kernel_table(sweep, save_artifact, benchmark):
    rows = [
        [name, f"{err:.3e}", f"{cond:.2e}"] for name, err, cond in sweep
    ]
    text = render_table(
        ["kernel", "max error (Poisson MMS)", "interp. cond. number"],
        rows,
        title="ABLATION: kernel choice on the manufactured Poisson problem",
    )
    benchmark(lambda: None)
    save_artifact("ablation_kernels.txt", text)


def test_phs3_is_accurate_without_tuning(sweep, benchmark):
    """phs3 is accurate with NO tuning, while shape-parameter kernels
    range from better (lucky ε) to catastrophically worse (unlucky ε) —
    exactly the robustness argument of §3."""
    benchmark(lambda: None)
    errs = {name: err for name, err, _ in sweep}
    assert errs["phs3 (paper)"] < 0.05
    # A badly tuned shape kernel is orders of magnitude worse than phs3.
    worst_tuned = max(
        errs["gaussian eps=2"], errs["gaussian eps=6"], errs["multiquadric eps=2"]
    )
    assert worst_tuned > 10 * errs["phs3 (paper)"]


def test_gaussian_is_shape_sensitive(sweep, benchmark):
    """The setback the paper avoids: Gaussian accuracy swings with ε."""
    benchmark(lambda: None)
    errs = {name: err for name, err, _ in sweep}
    lo, hi = errs["gaussian eps=2"], errs["gaussian eps=6"]
    assert max(lo, hi) > 2 * min(lo, hi)


def test_phs3_solve_speed(scale, benchmark):
    cloud = SquareCloud(max(scale.laplace.nx // 2, 12))
    prob = manufactured_poisson(cloud, "trig")
    solver = RBFSolver(cloud, kernel=polyharmonic(3))
    benchmark(solver.solve, prob)

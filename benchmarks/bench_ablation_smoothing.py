"""ABLATION — control-smoothness penalty (§4).

"the DP control is considerably less smooth than the other two.  This
could be resolved by ... penalising the control's variations."  The paper
refrained from enabling the penalty to keep the comparison fair; this
ablation turns it on and measures the trade-off: control roughness
(discrete H¹-seminorm) vs achieved tracking cost, per penalty weight.
"""

import numpy as np
import pytest

from repro.bench.tables import render_table
from repro.control.dp import NavierStokesDP
from repro.control.loop import optimize
from repro.pde.navier_stokes import NSConfig

WEIGHTS = (0.0, 1e-4, 1e-3, 1e-2)


def roughness(c, y):
    return float(np.sum((np.diff(c) / np.diff(y)) ** 2 * np.diff(y)))


@pytest.fixture(scope="module")
def sweep(scale, ns_problem_bench):
    prob = ns_problem_bench
    cfg = NSConfig(
        reynolds=scale.ns.reynolds,
        refinements=scale.ns.refinements_dp,
        pseudo_dt=scale.ns.pseudo_dt,
    )
    out = []
    for w in WEIGHTS:
        dp = NavierStokesDP(prob, cfg, smoothness_weight=w)
        c, hist = optimize(dp, scale.ns.iterations, scale.ns.lr)
        # Tracking cost alone (without the penalty term), for comparison.
        st = prob.solve(c, cfg)
        track = prob.cost(st.u, st.v)
        out.append((w, track, roughness(c, prob.inflow_y)))
    return out


def test_smoothing_table(sweep, save_artifact, benchmark):
    rows = [
        [f"{w:g}", f"{track:.3e}", f"{rough:.3e}"] for w, track, rough in sweep
    ]
    text = render_table(
        ["penalty weight", "tracking cost J", "control roughness |c'|²"],
        rows,
        title="ABLATION: DP control-variation penalty (paper §4 suggestion)",
    )
    benchmark(lambda: None)
    save_artifact("ablation_smoothing.txt", text)


def test_penalty_smooths_control(sweep, benchmark):
    benchmark(lambda: None)
    roughs = [r for _, _, r in sweep]
    assert roughs[-1] < roughs[0]  # strongest penalty → smoothest control


def test_unpenalised_tracks_best(sweep, benchmark):
    """The fairness argument: the penalty trades tracking for smoothness."""
    benchmark(lambda: None)
    tracks = [t for _, t, _ in sweep]
    assert tracks[0] <= tracks[-1] * 1.5

"""ABLATION — execution tiers: eager tape vs compiled replay vs fused codegen.

The codegen backend (:mod:`repro.autodiff.lowering` /
:mod:`repro.autodiff.codegen`) lowers a traced program to an SSA-style
IR, fuses elementwise chains, drops dead buffers, and emits one
straight-line NumPy kernel per program.  This ablation times one oracle
evaluation (``value_and_grad`` — the unit of work per optimiser
iteration) in all three tiers on the DP hot loops (Laplace at several N,
Navier–Stokes with k = 10 refinements) and on the PINN loss loop at two
network sizes, and verifies bit-exact gradient parity across tiers.

Two regimes show up, and the profiled breakdown quantifies both:

- The PINN loss loop is elementwise/matmul bound — fully symbolic — so
  fusion, arena reuse, and the taped ``1 - tanh^2`` CSE pay end to end.
- The DP loops spend roughly half their time inside cached-LU
  back-substitutions (opaque LAPACK calls, identical in every tier), so
  the end-to-end ratio is Amdahl-limited; the *fused-kernel* portion of
  the timeline — everything except the solves — still clears 1.5x.
"""

import time

import numpy as np
import pytest

from repro.autodiff.compile import compiled_value_and_grad
from repro.bench.tables import render_table
from repro.cloud.channel import ChannelCloud
from repro.cloud.square import SquareCloud
from repro.control.dp import LaplaceDP, NavierStokesDP, NSConfig
from repro.control.pinn import LaplacePINN, PINNTrainConfig
from repro.nn.pytree import tree_flatten, value_and_grad_tree
from repro.pde.laplace import LaplaceControlProblem
from repro.pde.navier_stokes import ChannelFlowProblem

LAPLACE_SIZES = (8, 12, 16)        # nx; N = nx**2
NS_SHAPE = (21, 11)                # the default-tier channel cloud
NS_REFINEMENTS = 10                # paper's DP setting
PINN_CONFIGS = (                   # (hidden, n_interior)
    ((20, 20), 100),
    ((30, 30, 30), 300),
)
MODES = ("eager", "replay", "codegen")


def _best(fn, rounds: int, reps: int) -> float:
    """Best-of-``rounds`` mean call time over ``reps`` calls."""
    fn()  # warm up: trace/lower/compile, page in buffers
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, (time.perf_counter() - t0) / reps)
    return best


def _grad_diff(g_ref, g) -> float:
    fa, _ = tree_flatten(g_ref)
    fb, _ = tree_flatten(g)
    return max(float(np.max(np.abs(a - b))) if a.size else 0.0
               for a, b in zip(fa, fb))


@pytest.fixture(scope="module")
def dp_sweep():
    """DP oracles across tiers: per-iteration time + gradient parity."""
    rng = np.random.default_rng(0)
    rows = []
    for nx in LAPLACE_SIZES:
        problem = LaplaceControlProblem(SquareCloud(nx))
        c0 = rng.normal(scale=0.1, size=problem.n_control)
        times, grads = {}, {}
        for mode in MODES:
            dp = LaplaceDP(problem, compile=False if mode == "eager" else mode)
            _, grads[mode] = dp.value_and_grad(c0)
            times[mode] = _best(lambda: dp.value_and_grad(c0), rounds=5, reps=200)
        rows.append({"name": f"Laplace DP nx={nx} (N={problem.cloud.n})",
                     "times": times, "grads": grads})

    problem = ChannelFlowProblem(ChannelCloud(*NS_SHAPE))
    c0 = problem.default_control()
    times, grads = {}, {}
    for mode in MODES:
        dp = NavierStokesDP(
            problem, NSConfig(refinements=NS_REFINEMENTS),
            compile=False if mode == "eager" else mode,
        )
        _, grads[mode] = dp.value_and_grad(c0)
        times[mode] = _best(lambda: dp.value_and_grad(c0), rounds=3, reps=4)
    rows.append({"name": f"NS DP {NS_SHAPE[0]}x{NS_SHAPE[1]} k={NS_REFINEMENTS}",
                 "times": times, "grads": grads})
    return rows


@pytest.fixture(scope="module")
def pinn_sweep():
    """PINN loss ``value_and_grad_tree`` across tiers (the training unit)."""
    from repro.autodiff.compile import compiled_value_and_grad_tree

    rows = []
    problem = LaplaceControlProblem(SquareCloud(12))
    for hidden, n_interior in PINN_CONFIGS:
        cfg = PINNTrainConfig(epochs=1, n_interior=n_interior, n_boundary=30)
        pinn = LaplacePINN(
            problem, state_hidden=hidden, control_hidden=hidden, config=cfg
        )
        params = pinn.init_params(seed=0)
        loss = lambda p: pinn.loss(p, omega=1.0)  # noqa: E731
        times, grads = {}, {}
        for mode in MODES:
            vg = (value_and_grad_tree(loss) if mode == "eager"
                  else compiled_value_and_grad_tree(loss, mode=mode))
            _, grads[mode] = vg(params)
            times[mode] = _best(lambda: vg(params), rounds=5, reps=30)
        rows.append({"name": f"PINN loss hid={hidden} ni={n_interior}",
                     "times": times, "grads": grads})
    return rows


@pytest.fixture(scope="module")
def dp_breakdown():
    """Profiled replay vs codegen on Laplace DP, split at the LU solves.

    The solves are opaque closure calls — the same cached-LU LAPACK
    back-substitutions in both tiers — so subtracting them isolates the
    portion of the timeline codegen can actually touch.
    """
    problem = LaplaceControlProblem(SquareCloud(12))
    dp = LaplaceDP(problem)
    rng = np.random.default_rng(0)
    cs = [rng.normal(scale=0.1, size=problem.n_control) for _ in range(200)]

    out = {}
    for mode in ("replay", "codegen"):
        vg = compiled_value_and_grad(dp._cost_tensor, mode=mode, profile=True)
        for c in cs:
            vg(c)
        p = vg.profile
        segs = p.kernels if mode == "codegen" else p.ops
        solve = sum(s.fwd_seconds + s.bwd_seconds for n, s in segs.items()
                    if "solve" in n or "lstsq" in n)
        out[mode] = {"total": p.replay_seconds, "solve": solve,
                     "other": p.replay_seconds - solve, "profile": p}
    return out


def _tier_table(rows, title):
    body = []
    for r in rows:
        t = r["times"]
        body.append([
            r["name"],
            f"{t['eager'] * 1e6:.1f}",
            f"{t['replay'] * 1e6:.1f}",
            f"{t['codegen'] * 1e6:.1f}",
            f"{t['replay'] / t['codegen']:.2f}x",
            f"{t['eager'] / t['codegen']:.2f}x",
        ])
    return render_table(
        ["problem", "eager us", "replay us", "codegen us",
         "cg/replay", "cg/eager"],
        body,
        title=title,
    )


def test_ablation_codegen_table(dp_sweep, pinn_sweep, dp_breakdown,
                                save_artifact, benchmark):
    text = _tier_table(
        dp_sweep + pinn_sweep,
        "ABLATION: one value_and_grad call per tier "
        "(eager tape / compiled replay / fused codegen)",
    )

    b = dp_breakdown
    r, c = b["replay"], b["codegen"]
    p = c["profile"]
    text += (
        "\n\nProfiled breakdown — Laplace DP nx=12, 200 oracle calls "
        "(instrumented timings):\n"
        f"  replay : total {r['total'] * 1e3:7.2f} ms   "
        f"LU solves {r['solve'] * 1e3:6.2f} ms   "
        f"other {r['other'] * 1e3:6.2f} ms\n"
        f"  codegen: total {c['total'] * 1e3:7.2f} ms   "
        f"LU solves {c['solve'] * 1e3:6.2f} ms   "
        f"other {c['other'] * 1e3:6.2f} ms\n"
        f"  non-solve (fused-kernel) speedup: "
        f"{r['other'] / c['other']:.2f}x   end-to-end: "
        f"{r['total'] / c['total']:.2f}x\n"
        "  The solves are identical cached-LU LAPACK calls in both tiers\n"
        "  (Amdahl's bound on the DP end-to-end ratio); the PINN loss loop\n"
        "  has no opaque ops and the full ratio survives end to end.\n\n"
        "Codegen program summary (Laplace DP nx=12):\n"
        f"  fusion groups: {p.fusion_groups}   fused ops: {p.fused_ops}   "
        f"arena: {p.arena_bytes} B in {p.arena_slots} slots\n"
    )
    benchmark(lambda: None)
    save_artifact("ablation_codegen.txt", text)


def test_gradient_parity_bitexact(dp_sweep, pinn_sweep, benchmark):
    """All three tiers must produce identical gradients, bit for bit."""
    benchmark(lambda: None)
    for r in dp_sweep + pinn_sweep:
        for mode in ("replay", "codegen"):
            d = _grad_diff(r["grads"]["eager"], r["grads"][mode])
            assert d == 0.0, f"{r['name']}: {mode} grad diff {d:.3e}"


def test_codegen_beats_replay_on_dp(dp_sweep, benchmark):
    """End-to-end: codegen must not regress the solve-bound DP loops."""
    benchmark(lambda: None)
    for r in dp_sweep:
        ratio = r["times"]["replay"] / r["times"]["codegen"]
        assert ratio >= 1.05, f"{r['name']}: cg/replay {ratio:.2f}x < 1.05x"


def test_codegen_1p5x_on_pinn_loss(pinn_sweep, benchmark):
    """The fully-symbolic PINN loss clears 1.35x over replay end to end.

    (The CI smoke gate — ``repro.bench.codegen_smoke`` — holds the strict
    1.5x line on the small-network config; this sweep also covers the
    larger default-tier network where dense matmul time compresses the
    ratio, so it asserts with margin for shared-runner noise.)
    """
    benchmark(lambda: None)
    small = pinn_sweep[0]
    ratio = small["times"]["replay"] / small["times"]["codegen"]
    assert ratio >= 1.35, f"{small['name']}: cg/replay {ratio:.2f}x < 1.35x"
    for r in pinn_sweep:
        ratio = r["times"]["replay"] / r["times"]["codegen"]
        assert ratio >= 1.15, f"{r['name']}: cg/replay {ratio:.2f}x < 1.15x"


def test_fused_portion_1p5x_on_dp(dp_breakdown, benchmark):
    """Profiler-verified: the non-solve portion of the DP loop >= 1.5x."""
    benchmark(lambda: None)
    ratio = dp_breakdown["replay"]["other"] / dp_breakdown["codegen"]["other"]
    assert ratio >= 1.5, f"fused-portion speedup {ratio:.2f}x < 1.5x"

"""ABLATION — multi-RHS factorisation reuse (the vbatch solve rule).

The batching transform lowers N independent PDE solves to ONE
factorisation serving an ``(N_rhs, n)`` block — the mechanism behind the
batched ω line search and :func:`repro.control.loop.batched_cost_sweep`.
This ablation quantifies that reuse in isolation: for
N_rhs ∈ {1, 8, 64, 256}, solve the same Laplace system against N random
right-hand sides (a) refactorising per RHS, as a naive loop over
independent programs would, and (b) factorising once and calling
``solve_block``.  Both the dense (LAPACK getrs) and sparse (SuperLU)
backends are swept.  The sparse block path is additionally bitwise
per-column for narrow blocks — the regime the bit-identity CI gates run
in; the table's ``bitwise`` column records honestly where each backend
leaves that regime (SuperLU switches to a blocked substitution around
~50 columns, dense getrs already reorders at 2).
"""

import numpy as np
import pytest

from repro.bench.metrics import measure_run
from repro.bench.tables import render_table
from repro.cloud.square import SquareCloud
from repro.rbf.assembly import LinearOperator2D
from repro.rbf.solver import (
    BoundaryCondition,
    LinearPDEProblem,
    LocalRBFSolver,
    RBFSolver,
)

N_RHS = (1, 8, 64, 256)
NX = 14


def _problem():
    return LinearPDEProblem(
        operator=LinearOperator2D(lap=1.0),
        bcs={
            g: BoundaryCondition("dirichlet", value=0.0)
            for g in ("top", "bottom", "left", "right")
        },
    )


@pytest.fixture(scope="module")
def sweep():
    cloud = SquareCloud(NX)
    rng = np.random.default_rng(0)
    blocks = {n: rng.standard_normal((n, cloud.n)) for n in N_RHS}
    out = []
    for backend, solver_cls in (("dense", RBFSolver), ("local", LocalRBFSolver)):
        for n_rhs in N_RHS:
            B = blocks[n_rhs]
            prob = _problem()

            # (a) refactorise per RHS: fresh solver, no cache key.
            def refactorise():
                s = solver_cls(cloud)
                return np.stack(
                    [s.solve_block(prob, b[None])[0] for b in B]
                ), s

            (x_loop, s_loop), t_loop, _ = measure_run(refactorise)

            # (b) factorise once, one multi-RHS call.
            def reuse():
                s = solver_cls(cloud)
                return s.solve_block(prob, B), s

            (x_block, s_block), t_block, _ = measure_run(reuse)

            assert s_loop.n_factorizations == n_rhs
            assert s_block.n_factorizations == 1
            np.testing.assert_allclose(x_block, x_loop, rtol=0, atol=1e-10)
            out.append(
                {
                    "backend": backend,
                    "n_rhs": n_rhs,
                    "t_loop": t_loop,
                    "t_block": t_block,
                    "speedup": t_loop / t_block if t_block > 0 else float("inf"),
                    "bitwise": bool(np.array_equal(x_block, x_loop)),
                }
            )
    return out


def test_factorisation_reuse_table(sweep, save_artifact, benchmark):
    rows = [
        [
            r["backend"],
            str(r["n_rhs"]),
            f"{r['t_loop'] * 1e3:.1f}",
            f"{r['t_block'] * 1e3:.1f}",
            f"{r['speedup']:.1f}x",
            "yes" if r["bitwise"] else "no",
        ]
        for r in sweep
    ]
    text = render_table(
        ["backend", "N_rhs", "refactorise ms", "factorise-once ms",
         "speedup", "bitwise"],
        rows,
        title=f"ABLATION: multi-RHS factorisation reuse "
        f"(Laplace, {SquareCloud(NX).n} nodes)",
    )
    benchmark(lambda: None)
    save_artifact("ablation_batching.txt", text)


def test_reuse_wins_at_scale(sweep, benchmark):
    """Factorise-once must dominate once the block amortises the LU."""
    benchmark(lambda: None)
    for r in sweep:
        if r["n_rhs"] >= 64:
            assert r["speedup"] > 2.0, (
                f"{r['backend']} N_rhs={r['n_rhs']}: {r['speedup']:.2f}x"
            )


def test_sparse_block_bitwise_for_narrow_blocks(sweep, benchmark):
    """SuperLU's multi-RHS path is column-for-column bitwise in the
    narrow-block regime the batched line search and cost sweeps use
    (wide blocks may take a blocked substitution); the dense getrs block
    is only allclose even at 2 columns."""
    benchmark(lambda: None)
    for r in sweep:
        if r["backend"] == "local" and r["n_rhs"] <= 8:
            assert r["bitwise"], f"N_rhs={r['n_rhs']}"


def test_block_solve_scaling(benchmark):
    """Timing hook: the 256-RHS block solve on the sparse backend."""
    cloud = SquareCloud(NX)
    solver = LocalRBFSolver(cloud)
    B = np.random.default_rng(1).standard_normal((256, cloud.n))
    prob = _problem()
    solver.solve_block(prob, B, cache_key="bench")  # prime the cache
    benchmark(solver.solve_block, prob, B, "bench")

"""TABLE 1 — Hyperparameter summary for the Laplace problem.

Regenerates the paper's Table 1 (the configuration each method runs with)
alongside the cost each configuration actually achieves at the active
scale.  The benchmark timings measure one gradient evaluation per method —
the unit of work the iteration counts multiply.
"""

import numpy as np

from repro.bench.configs import FULL_SCALE
from repro.bench.harness import make_laplace_problem
from repro.bench.tables import render_hyperparameter_table
from repro.control.dal import LaplaceDAL
from repro.control.dp import LaplaceDP
from repro.control.pinn import LaplacePINN, PINNTrainConfig


def _table_text(scale) -> str:
    s = scale
    rows = {
        "Init. learning rate": {
            "DAL": f"{s.laplace.lr_dal:g}",
            "PINN": f"{s.pinn.laplace_lr:g}",
            "DP": f"{s.laplace.lr_dp:g}",
        },
        "Network architecture": {
            "PINN": "x".join(str(h) for h in s.pinn.laplace_hidden)
        },
        "Epochs": {"PINN": str(s.pinn.laplace_epochs)},
        "Iterations": {"DAL": str(s.laplace.iterations), "DP": str(s.laplace.iterations)},
        "Point cloud size": {
            m: str(s.laplace.nx**2) for m in ("DAL", "PINN", "DP")
        },
        "Max. polynomial degree n": {"DAL": "1", "DP": "1"},
    }
    return render_hyperparameter_table(
        f"TABLE 1 (scale tier: {s.name}; paper full-scale: 100x100 cloud, "
        "lr 1e-2/1e-3/1e-2, 3x30 MLP, 500 iters / 20k epochs)",
        rows,
    )


def test_table1_render(scale, save_artifact, benchmark):
    text_default = _table_text(scale)
    text_paper = _table_text(FULL_SCALE)
    benchmark(lambda: _table_text(scale))
    save_artifact("table1_laplace_hyperparameters.txt", text_default)
    save_artifact("table1_laplace_hyperparameters_full_tier.txt", text_paper)
    assert "Init. learning rate" in text_default


def test_table1_dal_gradient_unit(scale, benchmark):
    """One DAL gradient = one direct + one adjoint solve."""
    prob = make_laplace_problem(scale)
    dal = LaplaceDAL(prob)
    c = prob.zero_control()
    j, g = benchmark(dal.value_and_grad, c)
    assert np.isfinite(j) and np.all(np.isfinite(g))


def test_table1_dp_gradient_unit(scale, benchmark):
    """One DP gradient = one taped solve + one reverse pass."""
    prob = make_laplace_problem(scale)
    dp = LaplaceDP(prob)
    c = prob.zero_control()
    j, g = benchmark(dp.value_and_grad, c)
    assert np.isfinite(j) and np.all(np.isfinite(g))


def test_table1_pinn_epoch_unit(scale, benchmark):
    """One PINN epoch = one loss + backward over both networks."""
    prob = make_laplace_problem(scale)
    cfg = PINNTrainConfig(
        epochs=1,
        lr=scale.pinn.laplace_lr,
        n_interior=scale.pinn.n_interior,
        n_boundary=scale.pinn.n_boundary,
    )
    pinn = LaplacePINN(prob, state_hidden=scale.pinn.laplace_hidden, config=cfg)
    from repro.nn.pytree import value_and_grad_tree

    params = pinn.init_params()
    vg = value_and_grad_tree(lambda p: pinn.loss(p, omega=0.1))
    val, grads = benchmark(vg, params)
    assert np.isfinite(val)

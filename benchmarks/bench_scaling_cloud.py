"""SCALING — matrix-free Krylov vs direct splu across cloud sizes.

Thin pytest wrapper around :mod:`repro.bench.scaling_cloud`: the sweep
runs at the smoke tier by default (``REPRO_FULL=1`` extends it to the
100k-node regime the backend exists for), the table lands in
``benchmarks/artifacts/scaling_cloud.txt`` and the raw rows in
``scaling_cloud.json``.  Gate-style assertions keep the numbers honest:
gradient parity between the two backends where both run, bounded Krylov
iteration counts, and sub-quadratic growth of the iterative path's peak
gradient-evaluation memory.
"""

import json

import numpy as np
import pytest

from repro.bench.configs import is_full_scale
from repro.bench.scaling_cloud import (
    DEFAULT_SIZES,
    FULL_SIZES,
    render,
    run_sweep,
)

SIZES = FULL_SIZES if is_full_scale() else DEFAULT_SIZES

#: Iteration ceiling scales with the sweep tier: ILU quality (at a fixed
#: drop tolerance) degrades slowly with conditioning, so the 100k tier
#: is allowed more iterations than the CI smoke tier.
MAX_ITERATIONS = 600 if is_full_scale() else 120


@pytest.fixture(scope="module")
def sweep():
    return run_sweep(SIZES)


def test_scaling_table(sweep, save_artifact, benchmark):
    benchmark(lambda: None)
    save_artifact("scaling_cloud.txt", render(sweep))
    save_artifact("scaling_cloud.json", json.dumps(sweep, indent=1))


def test_iterative_gradients_match_direct(sweep, benchmark):
    """The acceptance criterion: timing numbers mean nothing unless the
    iterative DP gradient is the direct backend's gradient."""
    benchmark(lambda: None)
    checked = [r for r in sweep if "gradcheck" in r]
    assert checked, "no gradcheck rows in the sweep"
    for r in checked:
        assert r["gradcheck"]["grad_max_rel_diff"] < 1e-6, f"N={r['n']}"


def test_iteration_counts_bounded(sweep, benchmark):
    benchmark(lambda: None)
    for r in sweep:
        if r["solver"] == "iterative":
            assert r["iterations_last"] <= MAX_ITERATIONS, (
                f"N={r['n']}: {r['iterations_last']} iterations"
            )
            assert r["n_fallbacks"] == 0, f"N={r['n']} fell back to splu"


def test_iterative_memory_subquadratic(sweep, benchmark):
    """Peak gradient memory of the Krylov path must grow clearly slower
    than N² (the dense ceiling) across the sweep."""
    benchmark(lambda: None)
    rows = [r for r in sweep if r["solver"] == "iterative"]
    ns = np.array([r["n"] for r in rows], dtype=float)
    mem = np.array([max(r["peak_bytes"], 1) for r in rows], dtype=float)
    slope = np.polyfit(np.log(ns), np.log(mem), 1)[0]
    assert slope < 1.7, f"peak-memory log-log slope {slope:.2f} >= 1.7"

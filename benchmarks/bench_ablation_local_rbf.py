"""ABLATION — global collocation vs local RBF-FD (scalability extension).

The paper's conclusion: "we aim to improve the memory and computational
efficiency of DP by massively parallelising the framework."  The standard
route is local RBF-FD (its ref. [44]): sparse stencil operators instead
of dense global ones.  This ablation measures both regimes on the same
clouds — accuracy, operator-build time, solve time and operator storage —
showing the crossover that motivates that future work.
"""

import time

import numpy as np
import pytest

from repro.bench.metrics import measure_run
from repro.bench.tables import render_table
from repro.cloud.square import SquareCloud
from repro.control.dp import LaplaceDP
from repro.control.loop import optimize
from repro.pde.laplace import LaplaceControlProblem
from repro.rbf.local import build_local_operators, solve_pde_local
from repro.rbf.operators import build_nodal_operators
from repro.rbf.kernels import polyharmonic
from repro.rbf.solver import BoundaryCondition, LinearPDEProblem, RBFSolver
from repro.rbf.assembly import LinearOperator2D

SIZES = (12, 20, 28)

# End-to-end DP control sweep: dense global collocation vs the sparse
# local backend on the same optimisation problem.
DP_SIZES = (12, 18, 26)
DP_ITERS = 40


def exact(p):
    return np.sin(np.pi * p[:, 0]) * np.sinh(np.pi * p[:, 1]) / np.sinh(np.pi)


@pytest.fixture(scope="module")
def sweep():
    out = []
    for nx in SIZES:
        cloud = SquareCloud(nx)

        # Global: dense nodal operators + dense LU solve.
        (gops, solver), t_build_g, _ = measure_run(
            lambda: (build_nodal_operators(cloud, polyharmonic(3), 1),
                     RBFSolver(cloud))
        )
        prob = LinearPDEProblem(
            operator=LinearOperator2D(lap=1.0),
            bcs={g: BoundaryCondition("dirichlet", value=exact)
                 for g in ("top", "bottom", "left", "right")},
        )
        u_g, t_solve_g, _ = measure_run(lambda: solver.solve(prob))
        err_g = float(np.max(np.abs(u_g - exact(cloud.points))))
        bytes_g = gops.dx.nbytes * 3  # dx, dy, lap dense

        # Local: sparse stencil operators + sparse solve.
        lops, t_build_l, _ = measure_run(
            lambda: build_local_operators(cloud, stencil_size=15)
        )
        u_l, t_solve_l, _ = measure_run(
            lambda: solve_pde_local(
                cloud, lops, {"lap": 1.0}, 0.0,
                {g: exact for g in ("top", "bottom", "left", "right")},
            )
        )
        err_l = float(np.max(np.abs(u_l - exact(cloud.points))))
        bytes_l = (lops.dx.data.nbytes + lops.dx.indices.nbytes
                   + lops.dx.indptr.nbytes) * 3

        out.append(
            (cloud.n, err_g, t_build_g, t_solve_g, bytes_g,
             err_l, t_build_l, t_solve_l, bytes_l)
        )
    return out


def test_global_vs_local_table(sweep, save_artifact, benchmark):
    rows = []
    for (n, eg, tbg, tsg, bg, el, tbl, tsl, bl) in sweep:
        rows.append([
            str(n),
            f"{eg:.2e}", f"{(tbg + tsg) * 1e3:.0f}", f"{bg / 2**20:.1f}",
            f"{el:.2e}", f"{(tbl + tsl) * 1e3:.0f}", f"{bl / 2**20:.2f}",
        ])
    text = render_table(
        ["N", "global err", "global ms", "global MiB",
         "local err", "local ms", "local MiB"],
        rows,
        title="ABLATION: dense global collocation vs sparse local RBF-FD "
        "(Laplace Dirichlet problem)",
    )
    benchmark(lambda: None)
    save_artifact("ablation_local_rbf.txt", text)


def test_local_operators_use_less_memory(sweep, benchmark):
    benchmark(lambda: None)
    for (n, _, _, _, bg, _, _, _, bl) in sweep:
        assert bl < bg, f"N={n}"


def test_both_regimes_converge(sweep, benchmark):
    benchmark(lambda: None)
    errs_g = [eg for (_, eg, *_rest) in sweep]
    errs_l = [row[5] for row in sweep]
    assert errs_g[-1] < errs_g[0]
    assert errs_l[-1] < errs_l[0]


def test_local_build_scales_better(benchmark):
    """Operator-build timing at the largest size (the scalability story)."""
    cloud = SquareCloud(SIZES[-1])
    benchmark(build_local_operators, cloud, stencil_size=15)


# ----------------------------------------------------------------------
# End-to-end DP control: dense vs local backend (wall time, peak memory,
# final cost J across N)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def dp_backend_sweep():
    out = []
    for nx in DP_SIZES:
        row = {"n": SquareCloud(nx).n}
        for backend in ("dense", "local"):
            problem = LaplaceControlProblem(SquareCloud(nx), backend=backend)
            oracle = LaplaceDP(problem)
            (c, hist), t, mem = measure_run(
                lambda: optimize(oracle, DP_ITERS, 1e-2)
            )
            row[backend] = {
                "t": t,
                "mem": mem,
                "J": hist.best_cost,
                "nnz_or_n2": (
                    oracle.solver.nnz
                    if hasattr(oracle.solver, "nnz")
                    else problem.system.size
                ),
            }
        out.append(row)
    return out


def test_backend_dp_table(dp_backend_sweep, save_artifact, benchmark):
    """Table 3-style dense-vs-sparse comparison of the DP control loop."""
    rows = []
    for r in dp_backend_sweep:
        d, l = r["dense"], r["local"]
        rows.append([
            str(r["n"]),
            f"{d['t']:.2f}", f"{d['mem'] / 2**20:.1f}", f"{d['J']:.2e}",
            f"{l['t']:.2f}", f"{l['mem'] / 2**20:.1f}", f"{l['J']:.2e}",
            f"{d['t'] / max(l['t'], 1e-12):.1f}x",
        ])
    text = render_table(
        ["N", "dense s", "dense MiB", "dense J",
         "local s", "local MiB", "local J", "speedup"],
        rows,
        title=f"ABLATION: LaplaceDP control loop, dense vs local backend "
        f"({DP_ITERS} iterations)",
    )
    benchmark(lambda: None)
    save_artifact("ablation_backend_dp.txt", text)


def test_local_backend_cost_within_10x_of_dense(dp_backend_sweep, benchmark):
    """The sparse path must reach a comparable optimum, not just run fast."""
    benchmark(lambda: None)
    for r in dp_backend_sweep:
        assert r["local"]["J"] <= 10.0 * r["dense"]["J"] + 1e-12, f"N={r['n']}"


def test_sparse_wall_time_subcubic(dp_backend_sweep, benchmark):
    """Fitted log-log slope of the local-backend wall time stays below the
    dense LU's cubic scaling.  Lenient bound — small-N timings are noisy,
    but cubic growth across a 4x range of N is unambiguous."""
    benchmark(lambda: None)
    ns = np.array([r["n"] for r in dp_backend_sweep], dtype=float)
    ts = np.array(
        [max(r["local"]["t"], 1e-6) for r in dp_backend_sweep], dtype=float
    )
    slope = np.polyfit(np.log(ns), np.log(ts), 1)[0]
    assert slope < 2.9, f"local backend wall time slope {slope:.2f} >= 2.9"


def test_local_operator_storage_linear_in_n(dp_backend_sweep, benchmark):
    """Sparse system nnz grows ~linearly with N; dense storage is N^2."""
    benchmark(lambda: None)
    first, last = dp_backend_sweep[0], dp_backend_sweep[-1]
    growth_n = last["n"] / first["n"]
    growth_nnz = last["local"]["nnz_or_n2"] / first["local"]["nnz_or_n2"]
    growth_dense = last["dense"]["nnz_or_n2"] / first["dense"]["nnz_or_n2"]
    assert growth_nnz < 2.0 * growth_n
    assert growth_dense > 2.0 * growth_n

"""ABLATION — global collocation vs local RBF-FD (scalability extension).

The paper's conclusion: "we aim to improve the memory and computational
efficiency of DP by massively parallelising the framework."  The standard
route is local RBF-FD (its ref. [44]): sparse stencil operators instead
of dense global ones.  This ablation measures both regimes on the same
clouds — accuracy, operator-build time, solve time and operator storage —
showing the crossover that motivates that future work.
"""

import time

import numpy as np
import pytest

from repro.bench.metrics import measure_run
from repro.bench.tables import render_table
from repro.cloud.square import SquareCloud
from repro.rbf.local import build_local_operators, solve_pde_local
from repro.rbf.operators import build_nodal_operators
from repro.rbf.kernels import polyharmonic
from repro.rbf.solver import BoundaryCondition, LinearPDEProblem, RBFSolver
from repro.rbf.assembly import LinearOperator2D

SIZES = (12, 20, 28)


def exact(p):
    return np.sin(np.pi * p[:, 0]) * np.sinh(np.pi * p[:, 1]) / np.sinh(np.pi)


@pytest.fixture(scope="module")
def sweep():
    out = []
    for nx in SIZES:
        cloud = SquareCloud(nx)

        # Global: dense nodal operators + dense LU solve.
        (gops, solver), t_build_g, _ = measure_run(
            lambda: (build_nodal_operators(cloud, polyharmonic(3), 1),
                     RBFSolver(cloud))
        )
        prob = LinearPDEProblem(
            operator=LinearOperator2D(lap=1.0),
            bcs={g: BoundaryCondition("dirichlet", value=exact)
                 for g in ("top", "bottom", "left", "right")},
        )
        u_g, t_solve_g, _ = measure_run(lambda: solver.solve(prob))
        err_g = float(np.max(np.abs(u_g - exact(cloud.points))))
        bytes_g = gops.dx.nbytes * 3  # dx, dy, lap dense

        # Local: sparse stencil operators + sparse solve.
        lops, t_build_l, _ = measure_run(
            lambda: build_local_operators(cloud, stencil_size=15)
        )
        u_l, t_solve_l, _ = measure_run(
            lambda: solve_pde_local(
                cloud, lops, {"lap": 1.0}, 0.0,
                {g: exact for g in ("top", "bottom", "left", "right")},
            )
        )
        err_l = float(np.max(np.abs(u_l - exact(cloud.points))))
        bytes_l = (lops.dx.data.nbytes + lops.dx.indices.nbytes
                   + lops.dx.indptr.nbytes) * 3

        out.append(
            (cloud.n, err_g, t_build_g, t_solve_g, bytes_g,
             err_l, t_build_l, t_solve_l, bytes_l)
        )
    return out


def test_global_vs_local_table(sweep, save_artifact, benchmark):
    rows = []
    for (n, eg, tbg, tsg, bg, el, tbl, tsl, bl) in sweep:
        rows.append([
            str(n),
            f"{eg:.2e}", f"{(tbg + tsg) * 1e3:.0f}", f"{bg / 2**20:.1f}",
            f"{el:.2e}", f"{(tbl + tsl) * 1e3:.0f}", f"{bl / 2**20:.2f}",
        ])
    text = render_table(
        ["N", "global err", "global ms", "global MiB",
         "local err", "local ms", "local MiB"],
        rows,
        title="ABLATION: dense global collocation vs sparse local RBF-FD "
        "(Laplace Dirichlet problem)",
    )
    benchmark(lambda: None)
    save_artifact("ablation_local_rbf.txt", text)


def test_local_operators_use_less_memory(sweep, benchmark):
    benchmark(lambda: None)
    for (n, _, _, _, bg, _, _, _, bl) in sweep:
        assert bl < bg, f"N={n}"


def test_both_regimes_converge(sweep, benchmark):
    benchmark(lambda: None)
    errs_g = [eg for (_, eg, *_rest) in sweep]
    errs_l = [row[5] for row in sweep]
    assert errs_g[-1] < errs_g[0]
    assert errs_l[-1] < errs_l[0]


def test_local_build_scales_better(benchmark):
    """Operator-build timing at the largest size (the scalability story)."""
    cloud = SquareCloud(SIZES[-1])
    benchmark(build_local_operators, cloud, stencil_size=15)

"""DP through time: recover the initial condition of a heat flow.

The paper's future work includes "incorporat[ing] time".  This example
shows the library's time extension: evolve the heat equation on the RBF
cloud with a θ-scheme, then backpropagate *through the whole trajectory*
(one cached LU factorisation, one triangular solve per step, forward and
backward) to recover the initial condition from a terminal snapshot — the
PDE analogue of backpropagation through time.

Run:  python examples/heat_inverse.py          (≈ 10 s)
"""

import numpy as np

from repro.cloud import SquareCloud
from repro.nn.optimizers import Adam
from repro.pde import HeatConfig, HeatEquationProblem, heat_series_solution


def main() -> None:
    cloud = SquareCloud(16)
    cfg = HeatConfig(kappa=1.0, dt=2e-4, n_steps=40, theta=0.5)
    problem = HeatEquationProblem(cloud, cfg)
    T = cfg.dt * cfg.n_steps
    print(f"cloud: {cloud.n} nodes; horizon T = {T:.3f} ({cfg.n_steps} steps)")

    # Ground truth: the fundamental sine mode; observe only u(T).
    u_true = heat_series_solution(cloud.x, cloud.y, 0.0)
    target = problem.evolve(u_true).data
    decay = np.abs(target).max() / np.abs(u_true).max()
    print(f"mode decayed to {decay:.3f} of its initial amplitude "
          "(the inverse problem is exponentially ill-posed)")

    # DP-through-time descent from a cold start.
    c = np.zeros(cloud.n)
    opt = Adam(lr=0.05)
    state = opt.init(c)
    for it in range(120):
        j, g = problem.misfit_value_and_grad(c, target)
        if it % 30 == 0:
            print(f"  iter {it:3d}: terminal misfit {j:.3e}")
        c, state = opt.step(c, g, state)
    j, _ = problem.misfit_value_and_grad(c, target)
    print(f"  final   : terminal misfit {j:.3e}")

    err = np.max(np.abs(c - u_true) * (problem.mask_int))
    print(f"recovered initial condition: max interior error {err:.3f} "
          f"(vs amplitude {np.abs(u_true).max():.1f})")
    print(
        "\nNote the gap: the terminal misfit collapses while the initial-"
        "\ncondition error plateaus — high-frequency components of u0 decay"
        "\nbelow observability, the classic ill-posedness of backward heat"
        "\nflow.  Gradient descent acts as an iterative regulariser."
    )


if __name__ == "__main__":
    main()

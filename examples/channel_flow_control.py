"""Channel-flow optimal control (Fig. 1 / Fig. 4): DAL fails, DP succeeds.

Reproduces the paper's Navier–Stokes experiment at reduced scale: given
blowing/suction perturbations mid-channel, find the inflow profile whose
outflow is parabolic.  DAL's continuous adjoint is corrupted by RBF
derivative noise at Re = 100 and stalls; DP's exact discrete gradients
converge; at Re = 10, DAL recovers.

Run:  python examples/channel_flow_control.py          (≈ 30 s)
"""

import numpy as np

from repro.cloud import ChannelCloud
from repro.control import NavierStokesDAL, NavierStokesDP, optimize
from repro.pde import ChannelFlowProblem, NSConfig


def show_profile(label: str, y: np.ndarray, u: np.ndarray, width: int = 40) -> None:
    """Crude terminal rendering of a velocity profile."""
    print(f"  {label}")
    umax = max(u.max(), 1e-9)
    for yi, ui in zip(y[::2], u[::2]):
        bar = "#" * int(round(width * max(ui, 0.0) / umax))
        print(f"    y={yi:4.2f} |{bar}")


def main() -> None:
    problem = ChannelFlowProblem(cloud=ChannelCloud(21, 11), perturbation=0.3)
    print(f"channel cloud: {problem.cloud.n} nodes (paper: 1385 via GMSH)")

    cfg_dp = NSConfig(reynolds=100.0, refinements=10, pseudo_dt=0.5)
    cfg_dal = NSConfig(reynolds=100.0, refinements=3, pseudo_dt=0.5)

    c0 = problem.default_control()
    st0 = problem.solve(c0, cfg_dp)
    print(f"\nuncontrolled (parabolic inflow) cost J = {problem.cost(st0.u, st0.v):.3e}")

    # --- DP at Re = 100 -------------------------------------------------
    dp = NavierStokesDP(problem, cfg_dp)
    c_dp, h_dp = optimize(dp, n_iterations=60, initial_lr=1e-1)
    print(f"DP   (Re=100): J {h_dp.costs[0]:.3e} -> {h_dp.best_cost:.3e}")

    # --- DAL at Re = 100: the paper's failure case ----------------------
    dal = NavierStokesDAL(problem, cfg_dal, adjoint_refinements=30)
    c_dal, h_dal = optimize(dal, n_iterations=60, initial_lr=1e-1)
    print(f"DAL  (Re=100): J {h_dal.costs[0]:.3e} -> final {h_dal.costs[-1]:.3e}  "
          "(fails: adjoint advection needs noisy RBF derivatives of u)")

    # --- DAL at Re = 10: the paper's recovery case ----------------------
    dal10 = NavierStokesDAL(
        problem, NSConfig(reynolds=10.0, refinements=3, pseudo_dt=0.5),
        adjoint_refinements=30,
    )
    c_dal10, h_dal10 = optimize(dal10, n_iterations=60, initial_lr=1e-1)
    print(f"DAL  (Re=10) : J {h_dal10.costs[0]:.3e} -> {h_dal10.best_cost:.3e}  "
          "(recovers at lower Re)")

    # --- Outflow profiles (Fig. 4d) --------------------------------------
    st_dp = problem.solve(c_dp, cfg_dp)
    prof = problem.outflow_profiles(st_dp)
    print("\nOutflow u-velocity after DP control vs target (Fig. 4d):")
    show_profile("target (parabola)", prof["y"], prof["target"])
    show_profile("DP-controlled outflow", prof["y"], prof["u"])

    mismatch0 = np.abs(st0.u[problem.outflow] - problem.u_target).max()
    mismatch1 = np.abs(prof["u"] - prof["target"]).max()
    print(f"\nmax outflow mismatch: {mismatch0:.3e} (uncontrolled) -> "
          f"{mismatch1:.3e} (DP)")


if __name__ == "__main__":
    main()

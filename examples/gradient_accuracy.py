"""Gradient accuracy study: why the paper calls DP the "gold standard".

Compares, on both benchmark problems, the gradient of the cost computed
by (a) DP — reverse-mode AD through the solver, (b) DAL — the continuous
adjoint, and (c) central finite differences (the reference), plus the
cost of obtaining each.

Run:  python examples/gradient_accuracy.py          (≈ 20 s)
"""

import time

import numpy as np

from repro.cloud import ChannelCloud, SquareCloud
from repro.control import (
    FiniteDifferenceOracle,
    LaplaceDAL,
    LaplaceDP,
    NavierStokesDAL,
    NavierStokesDP,
)
from repro.pde import ChannelFlowProblem, NSConfig
from repro.pde.laplace import LaplaceControlProblem


def compare(name, dp, dal, c):
    fd = FiniteDifferenceOracle(dp.value, c, eps=1e-6)

    t0 = time.perf_counter()
    _, g_dp = dp.value_and_grad(c)
    t_dp = time.perf_counter() - t0

    t0 = time.perf_counter()
    _, g_dal = dal.value_and_grad(c)
    t_dal = time.perf_counter() - t0

    t0 = time.perf_counter()
    _, g_fd = fd.value_and_grad(c)
    t_fd = time.perf_counter() - t0

    def rel(a):
        return np.linalg.norm(a - g_fd) / np.linalg.norm(g_fd)

    def cos(a):
        return a @ g_fd / (np.linalg.norm(a) * np.linalg.norm(g_fd))

    # DAL's continuous (unweighted-L²) gradient lives in a different
    # metric than the discrete cost's gradient, so compare both the raw
    # relative error and the direction (cosine).
    print(f"\n=== {name} (control dim {c.size}) ===")
    print(f"  {'method':>4s} | {'rel err vs FD':>13s} | {'cos vs FD':>9s} | {'time':>8s}")
    print(f"  {'DP':>4s} | {rel(g_dp):13.2e} | {cos(g_dp):9.5f} | {t_dp*1e3:6.1f}ms")
    print(f"  {'DAL':>4s} | {rel(g_dal):13.2e} | {cos(g_dal):9.5f} | {t_dal*1e3:6.1f}ms")
    print(f"  {'FD':>4s} | {'(reference)':>13s} | {'1.00000':>9s} | {t_fd*1e3:6.1f}ms "
          f"({fd.n_evaluations} solves)")


def main() -> None:
    lap = LaplaceControlProblem(SquareCloud(18))
    compare("Laplace", LaplaceDP(lap), LaplaceDAL(lap), lap.zero_control())

    ns = ChannelFlowProblem(cloud=ChannelCloud(17, 9), perturbation=0.3)
    cfg = NSConfig(reynolds=100.0, refinements=4, pseudo_dt=0.5)
    compare(
        "Navier-Stokes (Re=100)",
        NavierStokesDP(ns, cfg),
        NavierStokesDAL(ns, cfg, adjoint_refinements=20),
        ns.default_control(),
    )

    print(
        "\nReading: DP matches the FD reference to ~1e-8 (exact discrete"
        "\ngradients, one solve + one adjoint solve).  DAL's continuous"
        "\nadjoint points in nearly the right direction on Laplace"
        "\n(cos ≈ 0.99; its magnitude differs because the continuous"
        "\ngradient carries no quadrature weights — 'gradients rising to"
        "\nvery large values' in the paper) but visibly degrades on"
        "\nNavier-Stokes (cos ≈ 0.8) — the optimise-then-discretise gap"
        "\nthe paper attributes to RBF boundary-derivative noise."
        "\nFD is accurate but needs 2n+1 solves per gradient."
    )


if __name__ == "__main__":
    main()

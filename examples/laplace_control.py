"""Laplace optimal control: the full three-method comparison (Fig. 3).

Runs DAL, DP, FD and a (small-budget) PINN on the same Laplace control
problem and prints the comparison the paper's Figure 3 and Table 3 make:
cost trajectories, final costs, and the recovered control profiles
against the analytic minimiser.

Run:  python examples/laplace_control.py          (≈ 1 minute)
"""

import numpy as np

from repro.cloud import SquareCloud
from repro.control import (
    FiniteDifferenceOracle,
    LaplaceDAL,
    LaplaceDP,
    LaplacePINN,
    PINNTrainConfig,
    omega_line_search,
    optimize,
)
from repro.pde.laplace import LaplaceControlProblem

ITERATIONS = 300
PINN_EPOCHS = 1200


def main() -> None:
    problem = LaplaceControlProblem(SquareCloud(22))
    c_exact = problem.optimal_control()
    results = {}

    # --- DAL: direct + analytically derived adjoint per iteration -----
    dal = LaplaceDAL(problem)
    c_dal, h_dal = optimize(dal, ITERATIONS, initial_lr=1e-2)
    results["DAL"] = (c_dal, h_dal.best_cost, h_dal.wall_time_s)

    # --- DP: reverse-mode AD through the collocation solver -----------
    dp = LaplaceDP(problem)
    c_dp, h_dp = optimize(dp, ITERATIONS, initial_lr=1e-2)
    results["DP"] = (c_dp, h_dp.best_cost, h_dp.wall_time_s)

    # --- FD baseline (footnote 11): accurate but O(n) solves/grad -----
    fd = FiniteDifferenceOracle(dp.value, problem.zero_control())
    c_fd, h_fd = optimize(fd, ITERATIONS // 10, initial_lr=1e-2)
    results["FD"] = (c_fd, h_fd.best_cost, h_fd.wall_time_s)

    # --- PINN with the two-step omega line search ----------------------
    cfg = PINNTrainConfig(epochs=PINN_EPOCHS, lr=2e-3, n_interior=250, n_boundary=30)
    pinn = LaplacePINN(problem, config=cfg)
    ls = omega_line_search(pinn, omegas=[1e-1, 1.0, 1e1])
    c_pinn = pinn.control_values(ls.params_c)
    # Report the *physical* cost of the PINN's control — re-simulated with
    # the reference RBF solver — rather than the surrogate's own estimate
    # (whose boundary-flux evaluation is the PINN's weak spot at small
    # training budgets; see EXPERIMENTS.md D4).
    j_pinn_physical = dp.value(c_pinn)
    results["PINN"] = (c_pinn, j_pinn_physical, float("nan"))
    print(f"PINN line search selected omega* = {ls.best_omega:g}")
    print(f"  per-omega retrained (surrogate) costs: "
          + " ".join(f"{c:.2e}" for c in ls.step2_costs))
    print(f"  surrogate J of winner {ls.best_cost:.2e}  ->  physical J of its "
          f"control {j_pinn_physical:.2e}")

    # --- Comparison -----------------------------------------------------
    print(f"\n{'method':>6s} | {'final J':>10s} | {'max |c - c*|':>12s} | time")
    for m, (c, j, t) in results.items():
        err = np.max(np.abs(c - c_exact))
        print(f"{m:>6s} | {j:10.3e} | {err:12.3e} | {t:.2f}s")

    print(
        "\nExpected shape (paper Fig. 3 / Table 3): DP reaches a cost many"
        "\norders below DAL and PINN; DAL and DP track the analytic control"
        "\nat discretisation accuracy; the PINN control is qualitatively"
        "\nright but limited by its training budget."
    )


if __name__ == "__main__":
    main()

"""Quickstart: solve a PDE mesh-free and optimise a boundary control.

Walks the library's three layers in ~60 lines:

1. build a mesh-free point cloud,
2. solve a PDE with RBF collocation and check it against the analytic
   solution,
3. run differentiable-programming (DP) optimal control on the paper's
   Laplace problem and compare with the analytic minimiser.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cloud import SquareCloud
from repro.control import LaplaceDP, optimize
from repro.pde.laplace import LaplaceControlProblem
from repro.rbf import (
    BoundaryCondition,
    LinearOperator2D,
    LinearPDEProblem,
    solve_pde,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A mesh-free cloud: scattered nodes + boundary tags + normals.
    # ------------------------------------------------------------------
    cloud = SquareCloud(20)
    print(f"cloud: {cloud}")

    # ------------------------------------------------------------------
    # 2. Solve Laplace's equation with known boundary data and compare
    #    against the exact harmonic solution.
    # ------------------------------------------------------------------
    def exact(p):
        return np.sin(np.pi * p[:, 0]) * np.sinh(np.pi * p[:, 1]) / np.sinh(np.pi)

    problem = LinearPDEProblem(
        operator=LinearOperator2D(lap=1.0),  # D = Δ
        bcs={
            g: BoundaryCondition("dirichlet", value=exact)
            for g in ("top", "bottom", "left", "right")
        },
    )
    u = solve_pde(cloud, problem)
    err = np.max(np.abs(u - exact(cloud.points)))
    print(f"forward solve:  max |u - u_exact| = {err:.2e}")

    # ------------------------------------------------------------------
    # 3. Optimal control with DP: find the top-wall potential c(x) whose
    #    flux matches the target — gradients flow through the solver.
    # ------------------------------------------------------------------
    control_problem = LaplaceControlProblem(SquareCloud(20))
    oracle = LaplaceDP(control_problem)

    c0 = oracle.initial_control()
    print(f"initial cost J(0)      = {oracle.value(c0):.3e}")

    c_star, history = optimize(oracle, n_iterations=300, initial_lr=1e-2)
    print(f"optimised cost         = {history.best_cost:.3e}")

    c_exact = control_problem.optimal_control()
    print(f"max |c - c*_analytic|  = {np.max(np.abs(c_star - c_exact)):.3e}")
    print(f"wall time              = {history.wall_time_s:.2f}s")


if __name__ == "__main__":
    main()
